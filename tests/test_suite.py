"""The exportable regression-suite subsystem (`repro.suite`).

Four layers of pinning:

* **Corpus semantics** — dedup keys collapse identical discoveries,
  subsumption pruning preserves the coverage union exactly, and
  error-revealing artifacts are never pruned.
* **Round-trip property** — for Hypothesis-chosen generated programs,
  every exported artifact replays to its recorded verdict, branch path
  and covered-branch set bit-for-bit with search disabled, and the
  whole suite runs green.
* **Campaign suites** — the checked-in fuzz repros, the AC controller
  and the Needham-Schroeder protocol all export replayable suites; the
  AC suite also runs under *plain* pytest in a subprocess with nothing
  but ``PYTHONPATH=src``.  A byte-exact golden export lives under
  ``tests/golden_suite/`` (regenerate with
  ``python tests/test_suite.py regen`` after an intentional format
  change).
* **Damage containment** — a bit-flipped artifact (via the
  ``suite.bitflip`` fault seam) is quarantined, never fatal; a
  bit-flipped manifest fails loudly with :class:`CorruptArtifact`.

Per-function C1 accounting is pinned here too: the parallel engine
must produce the same witnesses and the same coverage rollup as the
serial engine, and the C1 numbers must surface through ``RunStats``.
"""

import os
import random
import subprocess
import sys
import tempfile

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dart.config import DartOptions
from repro.dart.runner import Dart
from repro.faults import FaultPlan
from repro.faults import points as fault_points
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.needham_schroeder import ns_source, ns_toplevel
from repro.suite import (
    Artifact,
    CorruptArtifact,
    dedupe_artifacts,
    load_manifest,
    load_suite,
    path_fingerprint,
    prune_subsumed,
    replay_suite,
    suite_coverage,
)
from repro.testgen import GeneratorOptions, generate_program, load_repro

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")
GOLDEN_DIR = os.path.join(TESTS_DIR, "golden_suite")
CORPUS_FILES = sorted(
    os.path.join(TESTS_DIR, "corpus", name)
    for name in os.listdir(os.path.join(TESTS_DIR, "corpus"))
    if name.endswith(".json")
)

#: The campaign behind the committed golden suite.  Changing anything
#: here (or the on-disk format) requires regenerating tests/golden_suite
#: — that is the point: format drift must be a conscious, reviewed act.
GOLDEN_CAMPAIGN = dict(depth=2, strategy="bfs", seed=0,
                       max_iterations=200, stop_on_first_error=False)


def export_campaign(source, toplevel, out_dir, **overrides):
    """Run a witness-collecting campaign that exports to ``out_dir``."""
    params = dict(strategy="bfs", seed=0, max_iterations=80,
                  stop_on_first_error=False)
    params.update(overrides)
    options = DartOptions(export_suite=out_dir, **params)
    return Dart(source, toplevel, options).run()


def build_golden_suite(out_dir):
    """(Re)generate the golden AC-controller suite — see GOLDEN_CAMPAIGN."""
    return export_campaign(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                           out_dir, **GOLDEN_CAMPAIGN)


def make_artifact(path, error=None, covered=(), inputs=(1, 2)):
    return Artifact(list(inputs), ["int"] * len(inputs), path,
                    set(covered), error=error)


def err(kind="division by zero", location="p.c:3:5"):
    return {"kind": kind, "message": kind, "location": location}


class TestCorpusSemantics:
    def test_identical_dedup_keys_collapse(self):
        first = make_artifact((True, False), inputs=(7,))
        second = make_artifact((True, False), inputs=(99,))
        unique, duplicates = dedupe_artifacts([first, second])
        assert unique == [first]
        assert duplicates == [second]

    def test_same_path_different_error_class_kept_apart(self):
        clean = make_artifact((True,))
        faulty = make_artifact((True,), error=err())
        elsewhere = make_artifact((True,), error=err(location="p.c:9:1"))
        unique, duplicates = dedupe_artifacts([clean, faulty, elsewhere])
        assert unique == [clean, faulty, elsewhere] and not duplicates
        ids = {artifact.artifact_id for artifact in unique}
        assert len(ids) == 3, "error class must differentiate artifact ids"

    def test_artifact_id_shape(self):
        clean = make_artifact((True,))
        faulty = make_artifact((True,), error=err("Division By Zero!"))
        assert clean.artifact_id.startswith("ok_")
        assert faulty.artifact_id.startswith("err_division_by_zero_")
        assert clean.path_fp == path_fingerprint((True,))

    def test_subset_coverage_is_pruned_and_union_preserved(self):
        big = make_artifact((True,), covered={("f", 1, True), ("f", 1, False)})
        subset = make_artifact((False,), covered={("f", 1, True)})
        extra = make_artifact((True, True), covered={("f", 3, True)})
        kept, pruned = prune_subsumed([subset, big, extra])
        assert subset in pruned and big in kept and extra in kept
        union = set()
        for artifact in kept:
            union |= artifact.covered
        assert union == big.covered | subset.covered | extra.covered

    def test_error_artifacts_never_pruned(self):
        covering = make_artifact((True,),
                                 covered={("f", 1, True), ("f", 1, False)})
        redundant_error = make_artifact((False,), error=err(),
                                        covered={("f", 1, True)})
        kept, pruned = prune_subsumed([covering, redundant_error])
        assert redundant_error in kept
        assert not pruned or covering not in pruned

    def test_branchless_program_keeps_one_ok_witness(self):
        first = make_artifact((), covered=set(), inputs=(1,))
        second = make_artifact((), covered=set(), inputs=(2,))
        kept, pruned = prune_subsumed([first, second])
        assert len(kept) == 1 and kept[0].error is None


class TestRoundTripProperty:
    """Export→replay round-trip over generated mini-C programs."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_program_suite_replays_bit_for_bit(self, seed):
        program = generate_program(
            random.Random(seed), GeneratorOptions(max_statements=10),
            seed=seed)
        out = tempfile.mkdtemp(prefix="suite_prop_")
        result = export_campaign(program.render(), program.toplevel, out,
                                 max_iterations=40)
        assert result.stats.witnesses_recorded >= 1
        assert result.stats.artifacts_exported >= 1
        report = replay_suite(out)
        assert report["ok"], (seed, report["failed"], report["quarantined"])
        manifest = load_manifest(out)
        coverage, _manifest, quarantined = suite_coverage(out)
        assert not quarantined
        assert coverage.to_dict() == manifest["coverage"]
        # The prune invariant, end to end: the suite's covered union is
        # exactly the witnesses' union, so suite C1 can never fall below
        # what the kept artifacts discovered.
        witness_union = set()
        for witness in result.witnesses:
            witness_union |= witness.covered
        assert coverage.covered == witness_union


class TestCampaignSuites:
    @pytest.mark.parametrize(
        "path", CORPUS_FILES,
        ids=[os.path.basename(path) for path in CORPUS_FILES])
    def test_corpus_repro_exports_replayable_suite(self, path, tmp_path):
        payload = load_repro(path)
        out = str(tmp_path / "suite")
        result = export_campaign(payload["source"], payload["toplevel"],
                                 out, max_iterations=60)
        assert result.stats.artifacts_exported >= 1
        report = replay_suite(out)
        assert report["ok"], (report["failed"], report["quarantined"])

    def test_ac_controller_suite(self, tmp_path):
        out = str(tmp_path / "suite")
        result = export_campaign(AC_CONTROLLER_SOURCE,
                                 AC_CONTROLLER_TOPLEVEL, out,
                                 depth=2, max_iterations=200)
        manifest = load_manifest(out)
        # The depth-2 assertion violation must survive dedup and prune.
        error_ids = [entry["id"] for entry in manifest["artifacts"]
                     if entry["verdict"] == "error"]
        assert len(error_ids) == 1
        campaign_errors = {(error.kind, str(error.location))
                           for error in result.errors}
        suite_errors = {(entry["error"]["kind"],
                         str(entry["error"]["location"]))
                        for entry in manifest["artifacts"]
                        if entry["verdict"] == "error"}
        assert suite_errors == campaign_errors
        # Suite C1 can never fall below the campaign's recorded C1.
        coverage, _manifest, _quarantined = suite_coverage(out)
        assert coverage.c1_percent >= result.coverage.c1_percent
        assert replay_suite(out)["ok"]

    def test_ac_suite_runs_under_plain_pytest(self, tmp_path):
        out = str(tmp_path / "suite")
        export_campaign(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, out,
                        depth=2, max_iterations=200)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
             out],
            env={"PYTHONPATH": SRC_DIR, "PATH": os.environ.get("PATH", ""),
                 "HOME": os.environ.get("HOME", "/tmp")},
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_needham_schroeder_suite(self, tmp_path):
        out = str(tmp_path / "suite")
        result = export_campaign(ns_source("possibilistic"),
                                 ns_toplevel("possibilistic"), out,
                                 depth=2, strategy="dfs",
                                 max_iterations=5000,
                                 stop_on_first_error=True)
        assert result.found_error
        manifest = load_manifest(out)
        assert manifest["counts"]["errors"] >= 1
        assert replay_suite(out)["ok"]

    def test_interrupted_campaign_still_exports(self, tmp_path):
        # A budget-truncated session runs the exporter on what it found.
        out = str(tmp_path / "suite")
        result = export_campaign(AC_CONTROLLER_SOURCE,
                                 AC_CONTROLLER_TOPLEVEL, out,
                                 depth=2, max_iterations=5)
        assert result.stats.iterations == 5
        manifest = load_manifest(out)
        assert manifest["counts"]["artifacts"] >= 1
        assert manifest["provenance"]["iterations"] == 5
        assert replay_suite(out)["ok"]

    def test_checkpointed_plain_campaign_salvages_a_suite(self, tmp_path):
        # A campaign run WITHOUT witness collection checkpoints its
        # errors; resuming it with an export destination (excluded from
        # the options digest, so the checkpoint still matches) must
        # rematerialize them into replayable artifacts.
        state = str(tmp_path / "ckpt.json")
        # The budget must truncate the campaign *after* the depth-2
        # error (run 22, deterministic under seed 0) but *before* the
        # worklist drains (run 25) — a finished campaign deletes its
        # checkpoint.
        options = DartOptions(depth=2, strategy="bfs", seed=0,
                              max_iterations=23, stop_on_first_error=False,
                              state_file=state, checkpoint_every=1)
        first = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                     options).run()
        assert first.found_error and os.path.exists(state)
        out = str(tmp_path / "suite")
        salvage = DartOptions(depth=2, strategy="bfs", seed=0,
                              max_iterations=0, stop_on_first_error=False,
                              state_file=state, checkpoint_every=1,
                              export_suite=out)
        second = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                      salvage).run()
        assert second.resumed
        manifest = load_manifest(out)
        suite_errors = {(entry["error"]["kind"],
                         str(entry["error"]["location"]))
                        for entry in manifest["artifacts"]
                        if entry["verdict"] == "error"}
        assert suite_errors == {(error.kind, str(error.location))
                                for error in first.errors}
        assert replay_suite(out)["ok"]


def _tree_bytes(root):
    payload = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in filenames:
            if name.startswith("."):
                continue
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                payload[os.path.relpath(path, root)] = handle.read()
    return payload


class TestGoldenSuite:
    def test_golden_suite_is_committed(self):
        assert os.path.isdir(GOLDEN_DIR), \
            "tests/golden_suite/ lost its exported suite"
        assert os.path.exists(os.path.join(GOLDEN_DIR, "manifest.json"))

    def test_export_is_deterministic_and_matches_golden(self, tmp_path):
        out = str(tmp_path / "suite")
        build_golden_suite(out)
        fresh = _tree_bytes(out)
        golden = _tree_bytes(GOLDEN_DIR)
        assert sorted(fresh) == sorted(golden)
        for name in sorted(golden):
            assert fresh[name] == golden[name], (
                "suite export drifted from tests/golden_suite/{} — if the "
                "format change is intentional, regenerate with "
                "'python tests/test_suite.py regen'".format(name))

    def test_golden_suite_replays_green(self):
        report = replay_suite(GOLDEN_DIR)
        assert report["ok"], (report["failed"], report["quarantined"])


class TestDamageContainment:
    def _suite(self, tmp_path):
        out = str(tmp_path / "suite")
        export_campaign(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, out,
                        depth=2, max_iterations=200)
        return out

    def test_bitflipped_artifact_is_quarantined(self, tmp_path):
        out = self._suite(tmp_path)
        manifest = load_manifest(out)
        total = len(manifest["artifacts"])
        assert total >= 2
        # Occurrence 1 of the seam is the manifest read; occurrence 2 is
        # the first artifact's expected.json — flip a byte there.
        with fault_points.active(FaultPlan.parse("suite.bitflip@2")):
            _manifest, loaded, quarantined = load_suite(out)
        assert len(quarantined) == 1
        assert len(loaded) == total - 1
        assert quarantined[0]["id"] == manifest["artifacts"][0]["id"]

    def test_replay_quarantines_but_still_replays_the_rest(self, tmp_path):
        out = self._suite(tmp_path)
        total = len(load_manifest(out)["artifacts"])
        with fault_points.active(FaultPlan.parse("suite.bitflip@2")):
            report = replay_suite(out)
        assert not report["ok"]
        assert len(report["quarantined"]) == 1
        assert len(report["passed"]) == total - 1
        assert not report["failed"]

    def test_bitflipped_manifest_fails_loudly(self, tmp_path):
        out = self._suite(tmp_path)
        with fault_points.active(FaultPlan.parse("suite.bitflip@1")):
            with pytest.raises(CorruptArtifact):
                load_manifest(out)

    def test_tampered_program_source_is_quarantined(self, tmp_path):
        # No injector needed: hand-edit program.c; the hash pin in
        # expected.json must catch it.
        out = self._suite(tmp_path)
        manifest = load_manifest(out)
        first = os.path.join(out, manifest["artifacts"][0]["dir"],
                             "program.c")
        with open(first, "a") as handle:
            handle.write("\n// tampered\n")
        _manifest, loaded, quarantined = load_suite(out)
        assert len(quarantined) == 1
        assert "hash" in quarantined[0]["reason"]
        assert len(loaded) == len(manifest["artifacts"]) - 1


class TestC1Accounting:
    def test_c1_surfaces_through_runstats(self):
        options = DartOptions(depth=2, strategy="bfs", seed=0,
                              max_iterations=80, stop_on_first_error=False)
        run = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                   options).run()
        summary = run.stats.summary()
        assert summary["coverage"]["c1_percent"] == \
            pytest.approx(run.coverage.c1_percent, abs=0.01)
        assert summary["coverage"]["branches_both_arms"] == \
            run.coverage.branches_both_arms
        payload = run.to_dict()
        assert payload["coverage"]["c1_percent"] == \
            pytest.approx(run.coverage.c1_percent, abs=0.01)

    def test_parallel_merge_matches_serial(self):
        def campaign(jobs):
            options = DartOptions(depth=2, strategy="bfs", seed=0,
                                  max_iterations=60,
                                  stop_on_first_error=False, jobs=jobs,
                                  collect_witnesses=True)
            return Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                        options).run()

        serial = campaign(1)
        parallel = campaign(2)
        assert parallel.coverage.to_dict() == serial.coverage.to_dict()

        # Concrete random *seeds* differ between the engines (workers
        # draw their own restart vectors — pre-existing contract, see
        # test_parallel), but the discovered (path, error, coverage)
        # facts must agree...
        def fact(witness):
            return (witness.path, witness.error_key,
                    tuple(sorted(witness.covered)))

        assert {fact(w) for w in parallel.witnesses} == \
            {fact(w) for w in serial.witnesses}

        # ...and the parallel merge itself must be deterministic:
        # re-running the same campaign reproduces the witness list
        # bit-for-bit, concrete inputs and dispatch order included.
        def exact(witness):
            return (tuple(witness.inputs), tuple(witness.kinds),
                    witness.path, tuple(sorted(witness.covered)),
                    witness.error_key)

        again = campaign(2)
        assert [exact(w) for w in again.witnesses] == \
            [exact(w) for w in parallel.witnesses]


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "regen":
        build_golden_suite(GOLDEN_DIR)
        print("regenerated", GOLDEN_DIR)
    else:
        print("usage: python tests/test_suite.py regen", file=sys.stderr)
        sys.exit(2)
