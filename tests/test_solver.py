"""Unit tests for the linear integer constraint solver."""

import pytest

from repro.solver import SAT, Solver, UNKNOWN, UNSAT
from repro.solver.problem import (
    eliminate_equalities,
    normalize,
    substitute,
)
from repro.symbolic.expr import CmpExpr, EQ, GE, GT, LE, LT, NE, LinExpr


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


def solve(constraints, domains=None, **kwargs):
    return Solver(**kwargs).solve(constraints, domains)


def assert_sat(constraints, domains=None):
    result = solve(constraints, domains)
    assert result.status == SAT, result
    for constraint in constraints:
        assert constraint.evaluate(result.model)
    return result.model


class TestSingleVariable:
    def test_equality(self):
        model = assert_sat([CmpExpr(EQ, lin({0: 1}, -10))])
        assert model[0] == 10

    def test_strict_inequalities(self):
        model = assert_sat([
            CmpExpr(GT, lin({0: 1}, -5)),
            CmpExpr(LT, lin({0: 1}, -7)),
        ])
        assert model[0] == 6

    def test_disequality(self):
        assert_sat([CmpExpr(NE, lin({0: 1}))])

    def test_disequality_with_tight_bounds(self):
        # x in [5,6], x != 5  =>  x == 6
        model = assert_sat(
            [CmpExpr(NE, lin({0: 1}, -5))], domains={0: (5, 6)}
        )
        assert model[0] == 6

    def test_singleton_domain_excluded_is_unsat(self):
        result = solve([CmpExpr(NE, lin({0: 1}, -5))], domains={0: (5, 5)})
        assert result.status == UNSAT

    def test_domain_violation_unsat(self):
        result = solve(
            [CmpExpr(EQ, lin({0: 1}, -300))], domains={0: (-128, 127)}
        )
        assert result.status == UNSAT

    def test_scaled_equality(self):
        model = assert_sat([CmpExpr(EQ, lin({0: 3}, -21))])
        assert model[0] == 7

    def test_gcd_infeasibility(self):
        assert solve([CmpExpr(EQ, lin({0: 2}, -5))]).status == UNSAT

    def test_contradictory_bounds(self):
        result = solve([
            CmpExpr(GE, lin({0: 1}, -10)),  # x >= 10
            CmpExpr(LE, lin({0: 1}, -5)),   # x <= 5
        ])
        assert result.status == UNSAT

    def test_empty_constraint_list_is_sat(self):
        assert solve([]).status == SAT


class TestMultiVariable:
    def test_paper_example_h(self):
        # x != y  and  2x == x + 10  (the introduction's h/f example).
        model = assert_sat([
            CmpExpr(NE, lin({0: 1, 1: -1})),
            CmpExpr(EQ, lin({0: 2}, 0).sub(lin({0: 1}, 10))),
        ])
        assert model[0] == 10 and model[1] != 10

    def test_paper_example_z_unsat(self):
        # x == y and y == x + 10 (Section 2.4): infeasible.
        result = solve([
            CmpExpr(EQ, lin({0: 1, 1: -1})),
            CmpExpr(EQ, lin({1: 1, 0: -1}, -10)),
        ])
        assert result.status == UNSAT

    def test_chained_equalities(self):
        model = assert_sat([
            CmpExpr(EQ, lin({0: 1, 1: -1})),
            CmpExpr(EQ, lin({1: 1, 2: -1})),
            CmpExpr(EQ, lin({2: 1}, -4)),
        ])
        assert model[0] == model[1] == model[2] == 4

    def test_sum_constraint(self):
        model = assert_sat([
            CmpExpr(EQ, lin({0: 1, 1: 1}, -100)),
            CmpExpr(GE, lin({0: 1}, -40)),
            CmpExpr(GE, lin({1: 1}, -40)),
        ])
        assert model[0] + model[1] == 100
        assert model[0] >= 40 and model[1] >= 40

    def test_parity_conflict(self):
        # 2x + 2y == 4  and  x - y == 1: substitution then gcd failure.
        result = solve([
            CmpExpr(EQ, lin({0: 2, 1: 2}, -4)),
            CmpExpr(EQ, lin({0: 1, 1: -1}, -1)),
        ])
        assert result.status == UNSAT

    def test_no_unit_coefficient_equality(self):
        # 3x + 5y == 1: solved exactly by the Omega transformation even
        # over the full int32 domain.
        model = assert_sat([CmpExpr(EQ, lin({0: 3, 1: 5}, -1))])
        assert 3 * model[0] + 5 * model[1] == 1

    def test_omega_large_coprime_coefficients(self):
        model = assert_sat([CmpExpr(EQ, lin({0: 127, 1: 257}, -5))])
        assert 127 * model[0] + 257 * model[1] == 5

    def test_omega_huge_coefficients(self):
        model = assert_sat(
            [CmpExpr(EQ, lin({0: 1000003, 1: 999983}, -20))]
        )
        assert 1000003 * model[0] + 999983 * model[1] == 20

    def test_omega_three_variables(self):
        model = assert_sat([CmpExpr(EQ, lin({0: 3, 1: 6, 2: 22}, -1))])
        assert 3 * model[0] + 6 * model[1] + 22 * model[2] == 1

    def test_omega_with_sign_constraints_unsat(self):
        # 7x + 12y == 17 has no solution with both x, y >= 0.
        result = solve([
            CmpExpr(EQ, lin({0: 7, 1: 12}, -17)),
            CmpExpr(GE, lin({0: 1})),
            CmpExpr(GE, lin({1: 1})),
        ])
        assert result.status == UNSAT

    def test_omega_auxiliaries_stay_out_of_the_model_slots(self):
        # Negative ordinals (Omega auxiliaries) may appear in the raw
        # model but must never leak into an input vector update.
        from repro.dart.inputs import InputVector

        result = solve([CmpExpr(EQ, lin({0: 3, 1: 5}, -1))])
        assert result.status == SAT
        im = InputVector()
        im.record(0, "int", 0)
        im.record(1, "int", 0)
        merged = im.updated(result.model)
        assert 3 * merged[0].value + 5 * merged[1].value == 1

    def test_multi_var_disequality(self):
        model = assert_sat([
            CmpExpr(EQ, lin({0: 1, 1: 1}, -10)),
            CmpExpr(NE, lin({0: 1, 1: -1})),
        ])
        assert model[0] != model[1]

    def test_triangular_system(self):
        model = assert_sat([
            CmpExpr(LE, lin({0: 1, 1: 1}, -10)),   # x + y <= 10
            CmpExpr(GE, lin({0: 1}, -3)),          # x >= 3
            CmpExpr(GE, lin({1: 1}, -4)),          # y >= 4
            CmpExpr(NE, lin({0: 1, 1: -1})),       # x != y
        ])
        assert model[0] + model[1] <= 10

    def test_result_nodes_counted(self):
        result = solve([CmpExpr(EQ, lin({0: 1}, -1))])
        assert result.nodes >= 1


class TestBudget:
    def test_tiny_budget_degrades_to_unknown_not_wrong(self):
        constraints = [
            CmpExpr(EQ, lin({0: 3, 1: 5, 2: 7}, -23)),
            CmpExpr(NE, lin({0: 1, 1: -1})),
            CmpExpr(GE, lin({2: 1}, 0)),
        ]
        result = solve(constraints, node_budget=2)
        assert result.status in (SAT, UNKNOWN, UNSAT)
        if result.status == SAT:
            for constraint in constraints:
                assert constraint.evaluate(result.model)

    def test_default_domains_are_int32(self):
        model = assert_sat([CmpExpr(LE, lin({0: -1}, -(2**31)))])
        assert model[0] == -(2**31)


class TestNormalization:
    def test_strict_to_nonstrict(self):
        problem = normalize([CmpExpr(LT, lin({0: 1}))], {})
        assert problem.inequalities[0].const == 1  # x + 1 <= 0

    def test_ge_flips(self):
        problem = normalize([CmpExpr(GE, lin({0: 1}, -2))], {})
        assert problem.inequalities[0].coeffs == {0: -1}

    def test_substitute(self):
        target = lin({0: 2, 1: 1}, 3)
        replaced = substitute(target, 0, lin({2: 1}, -1))
        assert replaced.coeffs == {1: 1, 2: 2}
        assert replaced.const == 1

    def test_eliminate_records_substitutions(self):
        problem = normalize([CmpExpr(EQ, lin({0: 1, 1: -2}, 0))], {})
        eliminate_equalities(problem)
        assert not problem.infeasible
        assert len(problem.substitutions) == 1

    def test_constant_false_equality(self):
        problem = normalize([CmpExpr(EQ, lin({}, 5))], {})
        eliminate_equalities(problem)
        assert problem.infeasible


class TestModelVerification:
    def test_models_always_verified(self):
        # A large adversarial mix; whatever comes back as SAT must verify.
        constraints = [
            CmpExpr(LE, lin({0: 2, 1: -3}, 7)),
            CmpExpr(GT, lin({1: 1, 2: 4}, -9)),
            CmpExpr(NE, lin({0: 1, 2: 1}, -1)),
            CmpExpr(EQ, lin({0: 1, 1: 1, 2: 1}, -6)),
        ]
        result = solve(constraints, domains={i: (-50, 50) for i in range(3)})
        if result.status == SAT:
            for constraint in constraints:
                assert constraint.evaluate(result.model)

    def test_deterministic_given_seed(self):
        constraints = [CmpExpr(NE, lin({0: 1, 1: -1}))]
        a = solve(constraints, seed=5)
        b = solve(constraints, seed=5)
        assert a.model == b.model
