"""Concrete-execution tests: the interpreter must implement C semantics.

Each test compiles a small program and runs a function on concrete
arguments, checking the returned value against what a C compiler would
produce on a 32-bit target.
"""

import pytest

from repro.interp import Machine
from repro.minic import compile_program


def run(source, function="f", args=()):
    return Machine(compile_program(source)).run(function, args)


class TestArithmetic:
    def test_basic_ops(self):
        src = "int f(int a, int b) { return a * b + a / b - a % b; }"
        assert run(src, args=(17, 5)) == 85 + 3 - 2

    def test_division_truncates_toward_zero(self):
        src = "int f(int a, int b) { return a / b; }"
        assert run(src, args=(-7, 2)) == -3
        assert run(src, args=(7, -2)) == -3

    def test_modulo_sign_follows_dividend(self):
        src = "int f(int a, int b) { return a % b; }"
        assert run(src, args=(-7, 2)) == -1
        assert run(src, args=(7, -2)) == 1

    def test_signed_overflow_wraps(self):
        src = "int f(int a) { return a + 1; }"
        assert run(src, args=(2**31 - 1,)) == -(2**31)

    def test_multiplication_wraps(self):
        src = "int f(int a) { return a * a; }"
        assert run(src, args=(1 << 16,)) == 0

    def test_unsigned_arithmetic_wraps(self):
        src = "unsigned int f(unsigned int a) { return a + 1; }"
        assert run(src, args=(2**32 - 1,)) == 0

    def test_unary_minus_of_int_min(self):
        src = "int f(int a) { return -a; }"
        assert run(src, args=(-(2**31),)) == -(2**31)

    def test_bitwise_ops(self):
        src = "int f(int a, int b) { return (a & b) | (a ^ b); }"
        assert run(src, args=(0b1100, 0b1010)) == 0b1110

    def test_bitwise_not(self):
        assert run("int f(int a) { return ~a; }", args=(0,)) == -1

    def test_shifts(self):
        assert run("int f(int a) { return a << 4; }", args=(1,)) == 16
        assert run("int f(int a) { return a >> 2; }", args=(-8,)) == -2

    def test_unsigned_right_shift_is_logical(self):
        src = "unsigned int f(unsigned int a) { return a >> 1; }"
        assert run(src, args=(0x80000000,)) == 0x40000000

    def test_comparisons_yield_zero_one(self):
        src = "int f(int a, int b) { return (a < b) + (a == b) * 10; }"
        assert run(src, args=(1, 2)) == 1
        assert run(src, args=(2, 2)) == 10

    def test_signed_vs_unsigned_comparison(self):
        # -1 compared against an unsigned operand converts to UINT_MAX.
        src = "int f(int a, unsigned int b) { return a > b; }"
        assert run(src, args=(-1, 5)) == 1

    def test_logical_not(self):
        src = "int f(int a) { return !a + !!a * 2; }"
        assert run(src, args=(0,)) == 1
        assert run(src, args=(99,)) == 2


class TestControlFlow:
    def test_short_circuit_and_skips_rhs(self):
        src = """
        int calls = 0;
        int bump(void) { calls = calls + 1; return 1; }
        int f(int a) { int r; r = a && bump(); return calls * 10 + r; }
        """
        assert run(src, args=(0,)) == 0  # bump not called
        assert run(src, args=(5,)) == 11

    def test_short_circuit_or_skips_rhs(self):
        src = """
        int calls = 0;
        int bump(void) { calls = calls + 1; return 0; }
        int f(int a) { int r; r = a || bump(); return calls * 10 + r; }
        """
        assert run(src, args=(7,)) == 1
        assert run(src, args=(0,)) == 10

    def test_ternary_evaluates_one_side(self):
        src = """
        int hits = 0;
        int note(int v) { hits = hits + 1; return v; }
        int f(int c) { int r; r = c ? note(1) : note(2); return r * 10 + hits; }
        """
        assert run(src, args=(1,)) == 11
        assert run(src, args=(0,)) == 21

    def test_nested_loops_with_break_continue(self):
        src = """
        int f(void) {
          int i; int j; int total;
          total = 0;
          for (i = 0; i < 5; i++) {
            if (i == 3) continue;
            for (j = 0; j < 5; j++) {
              if (j > i) break;
              total = total + 1;
            }
          }
          return total;
        }
        """
        assert run(src) == 1 + 2 + 3 + 5  # i = 0,1,2,4

    def test_do_while_runs_at_least_once(self):
        src = """
        int f(int n) { int c; c = 0; do { c = c + 1; } while (n-- > 1);
          return c; }
        """
        assert run(src, args=(0,)) == 1
        assert run(src, args=(3,)) == 3

    def test_while_with_compound_condition(self):
        src = """
        int f(void) {
          int i; int s;
          i = 0; s = 0;
          while (i < 10 && s < 12) { s = s + i; i = i + 1; }
          return s;
        }
        """
        assert run(src) == 15  # 0+1+2+3+4+5

    def test_recursion(self):
        src = "int f(int n) { if (n <= 1) return 1; return n * f(n - 1); }"
        assert run(src, args=(6,)) == 720

    def test_mutual_recursion(self):
        src = """
        int odd(int n);
        int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        int odd(int n) { if (n == 0) return 0; return even(n - 1); }
        int f(int n) { return even(n) * 10 + odd(n); }
        """
        assert run(src, args=(8,)) == 10
        assert run(src, args=(9,)) == 1


class TestIntegerConversions:
    def test_char_truncation(self):
        src = "int f(int a) { char c; c = a; return c; }"
        assert run(src, args=(257,)) == 1
        assert run(src, args=(200,)) == -56  # signed char wraps

    def test_unsigned_char(self):
        src = "int f(int a) { unsigned char c; c = a; return c; }"
        assert run(src, args=(-1,)) == 255

    def test_short_truncation(self):
        src = "int f(int a) { short s; s = a; return s; }"
        assert run(src, args=(0x12345678,)) == 0x5678

    def test_explicit_cast(self):
        assert run("int f(int a) { return (char) a; }", args=(130,)) == -126

    def test_char_promotes_in_arithmetic(self):
        src = "int f(void) { char c; c = 100; return c * 3; }"
        assert run(src) == 300

    def test_increment_decrement(self):
        src = """
        int f(int a) {
          int pre; int post;
          pre = ++a;
          post = a++;
          return pre * 1000 + post * 10 + a;
        }
        """
        assert run(src, args=(5,)) == 6 * 1000 + 6 * 10 + 7

    def test_compound_assignments(self):
        src = """
        int f(int a) {
          a += 3; a -= 1; a *= 4; a /= 3; a %= 7;
          return a;
        }
        """
        a = 5
        a += 3; a -= 1; a *= 4; a //= 3; a %= 7
        assert run(src, args=(5,)) == a


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        src = "int f(int a) { int *p; p = &a; *p = 9; return a; }"
        assert run(src, args=(1,)) == 9

    def test_pointer_arithmetic_scaling(self):
        src = """
        int f(void) {
          int a[4];
          int *p;
          a[0] = 10; a[1] = 20; a[2] = 30; a[3] = 40;
          p = a;
          p = p + 2;
          return *p + *(p - 1);
        }
        """
        assert run(src) == 50

    def test_pointer_difference(self):
        src = """
        int f(void) { int a[8]; int *p; int *q;
          p = &a[1]; q = &a[6]; return q - p; }
        """
        assert run(src) == 5

    def test_array_write_loop(self):
        src = """
        int f(void) {
          int a[5]; int i; int s;
          for (i = 0; i < 5; i++) a[i] = i * i;
          s = 0;
          for (i = 0; i < 5; i++) s = s + a[i];
          return s;
        }
        """
        assert run(src) == 30

    def test_pointer_to_pointer(self):
        src = """
        int f(int a) { int *p; int **pp; p = &a; pp = &p;
          **pp = 42; return a; }
        """
        assert run(src, args=(0,)) == 42

    def test_pointer_passed_to_function(self):
        src = """
        void set(int *target, int value) { *target = value; }
        int f(void) { int x; x = 0; set(&x, 77); return x; }
        """
        assert run(src) == 77

    def test_char_pointer_into_int(self):
        # Byte-level aliasing, little endian.
        src = """
        int f(void) {
          int v; char *p;
          v = 0;
          p = (char *) &v;
          p[0] = 1; p[1] = 2;
          return v;
        }
        """
        assert run(src) == 0x0201

    def test_null_comparisons(self):
        src = """
        int f(void) { int *p; int x; p = NULL;
          if (p == NULL) { p = &x; }
          return p != NULL; }
        """
        assert run(src) == 1


class TestStructs:
    def test_field_access_and_assignment(self):
        src = """
        struct point { int x; int y; };
        int f(void) {
          struct point p;
          p.x = 3; p.y = 4;
          return p.x * p.x + p.y * p.y;
        }
        """
        assert run(src) == 25

    def test_struct_assignment_copies(self):
        src = """
        struct point { int x; int y; };
        int f(void) {
          struct point a; struct point b;
          a.x = 1; a.y = 2;
          b = a;
          b.x = 100;
          return a.x * 10 + b.x;
        }
        """
        assert run(src) == 110

    def test_struct_by_value_parameter(self):
        src = """
        struct point { int x; int y; };
        int sum(struct point p) { p.x = p.x + 1; return p.x + p.y; }
        int f(void) {
          struct point a;
          a.x = 5; a.y = 6;
          return sum(a) * 100 + a.x;
        }
        """
        assert run(src) == 1205

    def test_nested_struct(self):
        src = """
        struct inner { int v; };
        struct outer { int tag; struct inner in; };
        int f(void) {
          struct outer o;
          o.tag = 1; o.in.v = 41;
          return o.tag + o.in.v;
        }
        """
        assert run(src) == 42

    def test_struct_pointer_arrow(self):
        src = """
        struct node { int value; struct node *next; };
        int f(void) {
          struct node a; struct node b;
          a.value = 1; a.next = &b;
          b.value = 2; b.next = NULL;
          return a.next->value;
        }
        """
        assert run(src) == 2

    def test_linked_list_on_heap(self):
        src = """
        struct node { int value; struct node *next; };
        int f(void) {
          struct node *head; struct node *cur; int i; int total;
          head = NULL;
          for (i = 1; i <= 4; i++) {
            cur = (struct node *) malloc(sizeof(struct node));
            cur->value = i;
            cur->next = head;
            head = cur;
          }
          total = 0;
          while (head != NULL) {
            total = total * 10 + head->value;
            head = head->next;
          }
          return total;
        }
        """
        assert run(src) == 4321

    def test_paper_struct_cast_alias(self):
        # The Section 2.5 program shape: write through char* alias.
        src = """
        struct foo { int i; char c; };
        int f(void) {
          struct foo s;
          s.i = 0; s.c = 0;
          *((char *)&s + sizeof(int)) = 1;
          return s.c;
        }
        """
        assert run(src) == 1


class TestGlobalsAndStrings:
    def test_global_initialization(self):
        src = """
        int counter = 10;
        int table[3];
        int f(void) { table[0] = counter; counter = counter + 1;
          return table[0] + counter; }
        """
        assert run(src) == 21

    def test_globals_persist_across_calls_within_machine(self):
        src = "int g = 0; int f(void) { g = g + 1; return g; }"
        machine = Machine(compile_program(src))
        assert machine.run("f", ()) == 1
        assert machine.run("f", ()) == 2

    def test_globals_reset_in_new_machine(self):
        src = "int g = 0; int f(void) { g = g + 1; return g; }"
        module = compile_program(src)
        assert Machine(module).run("f", ()) == 1
        assert Machine(module).run("f", ()) == 1

    def test_string_functions(self):
        src = """
        int f(void) {
          char buf[16];
          strcpy(buf, "hello");
          return strlen(buf) + (strcmp(buf, "hello") == 0) * 10;
        }
        """
        assert run(src) == 15

    def test_strchr(self):
        src = """
        int f(void) {
          char *s;
          char *found;
          s = "abcdef";
          found = strchr(s, 'd');
          return found - s;
        }
        """
        assert run(src) == 3

    def test_memset_memcpy(self):
        src = """
        int f(void) {
          char a[8]; char b[8];
          memset(a, 7, 8);
          memcpy(b, a, 8);
          return b[0] + b[7];
        }
        """
        assert run(src) == 14

    def test_global_string_pointer(self):
        src = """
        char *greeting = "hi there";
        int f(void) { return strlen(greeting); }
        """
        assert run(src) == 8

    def test_enum_constants_in_code(self):
        src = """
        enum { RED = 1, GREEN = 2, BLUE = 4 };
        int f(void) { return RED + GREEN + BLUE; }
        """
        assert run(src) == 7

    def test_exit_builtin_halts(self):
        src = "int f(void) { exit(42); return 0; }"
        assert run(src) == 42
