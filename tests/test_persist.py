"""Tests for inter-run state persistence (resume after budget)."""

import os

import pytest

from repro import DartOptions
from repro.dart import persist
from repro.dart.inputs import InputVector
from repro.dart.pathcond import StackEntry
from repro.dart.runner import Dart
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE


class TestFileFormat:
    def roundtrip(self, tmp_path, stack, im):
        path = str(tmp_path / "state.json")
        persist.save_state(path, stack, im)
        return persist.load_state(path)

    def test_roundtrip(self, tmp_path):
        stack = [StackEntry(1, True), StackEntry(0, False)]
        im = InputVector()
        im.record(0, "int", -7)
        im.record(1, "ptr_choice", 1)
        loaded_stack, loaded_im = self.roundtrip(tmp_path, stack, im)
        assert [(e.branch, e.done) for e in loaded_stack] == \
            [(1, True), (0, False)]
        assert loaded_im.values() == [-7, 1]
        assert loaded_im[1].kind == "ptr_choice"

    def test_empty_state(self, tmp_path):
        loaded_stack, loaded_im = self.roundtrip(
            tmp_path, [], InputVector()
        )
        assert loaded_stack == [] and len(loaded_im) == 0

    def test_missing_file(self, tmp_path):
        assert persist.load_state(str(tmp_path / "nope.json")) is None

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert persist.load_state(str(path)) is None

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"version": 99, "stack": [], "im": []}')
        assert persist.load_state(str(path)) is None

    def test_clear_state(self, tmp_path):
        path = str(tmp_path / "state.json")
        persist.save_state(path, [], InputVector())
        persist.clear_state(path)
        assert not os.path.exists(path)
        persist.clear_state(path)  # idempotent


class TestResume:
    def test_interrupted_search_resumes_and_completes(self, tmp_path):
        path = str(tmp_path / "dart-state.json")
        # First session: budget too small to finish depth-1 exploration.
        first = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=2, seed=0, state_file=path),
        ).run()
        assert first.status == "exhausted"
        assert os.path.exists(path)
        # Second session resumes where the first stopped and finishes.
        second = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=100, seed=0, state_file=path),
        ).run()
        assert second.status == "complete"
        assert not os.path.exists(path)  # cleared on clean termination
        # Fewer runs than from scratch (some paths already explored).
        fresh = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=100, seed=0),
        ).run()
        assert second.iterations <= fresh.iterations

    def test_resume_finds_the_depth2_bug(self, tmp_path):
        path = str(tmp_path / "dart-state.json")
        partial = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(depth=2, max_iterations=3, seed=0,
                        state_file=path),
        ).run()
        assert not partial.found_error
        resumed = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(depth=2, max_iterations=500, seed=0,
                        state_file=path),
        ).run()
        assert resumed.found_error
        assert tuple(resumed.first_error().inputs) == (3, 0)

    def test_no_state_file_means_no_files(self, tmp_path):
        Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=5, seed=0),
        ).run()
        assert list(tmp_path.iterdir()) == []

    def test_mismatched_checkpoint_is_rejected_and_search_restarts(
        self, tmp_path
    ):
        # Regression: a state file written for a *different* program used
        # to be replayed blindly.  The v2 fingerprint rejects it and the
        # search restarts cleanly, matching a stateless session exactly.
        path = str(tmp_path / "stale.json")
        other_program = """
        int ac_controller(int m) {
          if (m == 1) m = m + 10;
          if (m == 2) m = m + 20;
          if (m == 3) m = m + 30;
          if (m == 4) m = m + 40;
          return m;
        }
        """
        stale = Dart(
            other_program, "ac_controller",
            DartOptions(max_iterations=2, seed=0, state_file=path),
        ).run()
        assert stale.status == "exhausted" and os.path.exists(path)
        resumed = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=100, seed=0, state_file=path),
        ).run()
        fresh = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=100, seed=0),
        ).run()
        assert not resumed.resumed
        assert resumed.status == fresh.status == "complete"
        assert resumed.iterations == fresh.iterations

    def test_legacy_v1_state_still_seeds_a_dfs_session(self, tmp_path):
        # The paper's literal "stack kept in a file" format (v1) remains
        # accepted as a seed for the directed search.
        path = str(tmp_path / "v1.json")
        stack = [StackEntry(1, False)]
        im = InputVector()
        im.record(0, "int", 3)
        persist.save_state(path, stack, im)
        result = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=100, seed=0, state_file=path),
        ).run()
        assert result.resumed
        assert result.status == "complete"
