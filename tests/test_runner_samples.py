"""End-to-end DART runs on the paper's Section 2 example programs."""

import pytest

from repro import DartOptions, dart_check, random_check
from repro.programs import samples


class TestIntroductionExample:
    """Section 2.1: the h/f example."""

    def test_directed_search_finds_abort_in_two_runs(self):
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=7)
        assert result.status == "bug_found"
        # First run random, second run solves (x != y, 2x == x+10).
        assert result.iterations == 2

    def test_error_inputs_satisfy_the_trigger(self):
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=3)
        x, y = result.first_error().inputs[:2]
        assert x == 10 and y != 10

    def test_random_search_fails(self):
        result = random_check(samples.H_SOURCE, "h",
                              max_iterations=2000, seed=7)
        assert not result.found_error

    def test_found_for_every_seed(self):
        for seed in range(8):
            result = dart_check(samples.H_SOURCE, "h",
                                max_iterations=50, seed=seed)
            assert result.status == "bug_found", seed
            assert result.iterations <= 3


class TestTerminationExample:
    """Section 2.4: infeasible second branch, so DART proves coverage."""

    def test_terminates_complete_with_no_error(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=1)
        assert result.status == "complete"
        assert not result.found_error

    def test_all_flags_still_set(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=1)
        assert result.flags == (True, True, True, True)

    def test_exactly_two_feasible_paths(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=1)
        assert len(result.stats.distinct_paths) == 2


class TestStructCastExample:
    """Section 2.5: dynamic data beats static alias analysis."""

    def test_reaches_the_abort(self):
        options = DartOptions(max_iterations=100, seed=3,
                              stop_on_first_error=False)
        result = dart_check(samples.STRUCT_CAST_SOURCE, "bar", options)
        kinds = {e.kind for e in result.errors}
        assert "abort" in kinds

    def test_also_finds_the_null_argument_crash(self):
        options = DartOptions(max_iterations=100, seed=3,
                              stop_on_first_error=False)
        result = dart_check(samples.STRUCT_CAST_SOURCE, "bar", options)
        kinds = {e.kind for e in result.errors}
        assert "segmentation fault" in kinds


class TestFoobarExample:
    """Section 2.5: non-linear guard, concrete fallback."""

    def test_finds_the_reachable_abort(self):
        result = dart_check(samples.FOOBAR_SOURCE, "foobar",
                            max_iterations=200, seed=0)
        assert result.status == "bug_found"
        x, y = result.first_error().inputs[:2]
        # Both aborts are genuinely reachable: the then-abort needs
        # x > 0 && y == 10, the else-abort x > 0 && y == 20 with the
        # wrapped int32 cube going non-positive (signed overflow).  Which
        # one the search hits first depends on the solver trajectory.
        cube = ((x * x * x + (1 << 31)) % (1 << 32)) - (1 << 31)
        if cube > 0:
            assert x > 0 and y == 10
        else:
            assert x > 0 and y == 20

    def test_non_linearity_clears_all_linear(self):
        result = dart_check(samples.FOOBAR_SOURCE, "foobar",
                            max_iterations=200, seed=0)
        all_linear = result.flags[0]
        assert not all_linear

    def test_found_across_seeds(self):
        found = sum(
            dart_check(samples.FOOBAR_SOURCE, "foobar",
                       max_iterations=300, seed=seed).found_error
            for seed in range(6)
        )
        assert found == 6


class TestFilterExample:
    """Input-filtering pipeline: directed search walks through the
    filters; random testing gets stuck on the magic number."""

    def test_directed_penetrates_filters(self):
        result = dart_check(samples.FILTER_SOURCE, "entry",
                            max_iterations=500, seed=2)
        assert result.status == "bug_found"
        magic, cmd, value = result.first_error().inputs[:3]
        assert magic == 42 and cmd == 7

    def test_random_stuck_in_filters(self):
        result = random_check(samples.FILTER_SOURCE, "entry",
                              max_iterations=3000, seed=2)
        assert not result.found_error

    def test_trigger_value_solved_not_guessed(self):
        result = dart_check(samples.FILTER_SOURCE, "entry",
                            max_iterations=500, seed=11)
        assert result.found_error
        assert result.first_error().inputs[2] == 2497940 // 4


class TestReplay:
    def test_reported_inputs_replay_to_the_same_fault(self):
        from repro.dart.runner import Dart

        dart = Dart(samples.H_SOURCE, "h", DartOptions(max_iterations=50,
                                                       seed=7))
        result = dart.run()
        fault = dart.replay(result.first_error().inputs)
        assert fault is not None
        assert fault.kind == result.first_error().kind
