"""Tests for the switch statement: parsing, semantics, C fall-through
semantics, and DART's ability to steer into case arms."""

import pytest

from repro import dart_check
from repro.interp import Machine
from repro.minic import compile_program
from repro.minic.errors import SemanticError

CLASSIFY = """
int classify(int x) {
  int r;
  r = 0;
  switch (x) {
    case 1:
    case 2:
      r = 10;
      break;
    case 3:
      r = 20;      /* falls through into case 4 */
    case 4:
      r = r + 1;
      break;
    default:
      r = -1;
  }
  return r;
}
"""


def run(source, function, args):
    return Machine(compile_program(source)).run(function, args)


class TestSemantics:
    @pytest.mark.parametrize("x,expected", [
        (1, 10),   # shared label
        (2, 10),
        (3, 21),   # fall-through: 20 then +1
        (4, 1),    # entered directly: 0 then +1
        (99, -1),  # default
        (-5, -1),
    ])
    def test_classify(self, x, expected):
        assert run(CLASSIFY, "classify", (x,)) == expected

    def test_switch_without_default_falls_past(self):
        src = """
        int f(int x) {
          switch (x) { case 1: return 10; }
          return 0;
        }
        """
        assert run(src, "f", (1,)) == 10
        assert run(src, "f", (2,)) == 0

    def test_case_expression_constants(self):
        src = """
        enum { BASE = 100 };
        int f(int x) {
          switch (x) {
            case BASE + 1: return 1;
            case BASE + 2: return 2;
          }
          return 0;
        }
        """
        assert run(src, "f", (101,)) == 1
        assert run(src, "f", (102,)) == 2

    def test_subject_evaluated_once(self):
        src = """
        int calls = 0;
        int next(void) { calls = calls + 1; return calls; }
        int f(void) {
          switch (next()) {
            case 1: break;
            case 2: break;
          }
          return calls;
        }
        """
        assert run(src, "f", ()) == 1

    def test_break_inside_switch_inside_loop(self):
        src = """
        int f(void) {
          int i; int total;
          total = 0;
          for (i = 0; i < 5; i++) {
            switch (i) {
              case 2: total = total + 100; break;
              default: total = total + 1;
            }
          }
          return total;
        }
        """
        assert run(src, "f", ()) == 104

    def test_continue_inside_switch_targets_loop(self):
        src = """
        int f(void) {
          int i; int total;
          total = 0;
          for (i = 0; i < 4; i++) {
            switch (i) {
              case 1: continue;
              default: ;
            }
            total = total + 1;
          }
          return total;
        }
        """
        assert run(src, "f", ()) == 3


class TestStaticChecks:
    def test_duplicate_case_rejected(self):
        with pytest.raises(SemanticError, match="duplicate"):
            compile_program(
                "int f(int x) { switch (x) { case 1: case 1: break; }"
                " return 0; }"
            )

    def test_multiple_defaults_rejected(self):
        with pytest.raises(SemanticError, match="default"):
            compile_program(
                "int f(int x) { switch (x) { default: default: break; }"
                " return 0; }"
            )

    def test_non_constant_case_rejected(self):
        with pytest.raises(SemanticError):
            compile_program(
                "int f(int x, int y) { switch (x) { case y: break; }"
                " return 0; }"
            )

    def test_non_integer_subject_rejected(self):
        with pytest.raises(SemanticError, match="integer"):
            compile_program(
                "int f(int *p) { switch (p) { case 0: break; } return 0; }"
            )


class TestDirectedSearchThroughSwitch:
    def test_dart_reaches_deep_case(self):
        source = """
        int f(int x) {
          switch (x) {
            case 77123: abort();
            case 5: return 5;
            default: return 0;
          }
          return 1;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.status == "bug_found"
        assert result.first_error().inputs == [77123]

    def test_dart_explores_all_arms(self):
        result = dart_check(CLASSIFY, "classify",
                            max_iterations=100, seed=0)
        assert result.status == "complete"
        # arms: 1, 2, 3, 4, default = 5 paths.
        assert len(result.stats.distinct_paths) == 5
        assert result.coverage.percent == 100.0
