"""Property-based differential testing of *statement* semantics.

Hypothesis generates small straight-line programs (assignments, ifs,
while loops with bounded trip counts) over three int variables; each is
rendered to mini-C and executed by the Machine, and the final state is
compared against a Python oracle with C int32 semantics.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.interp import Machine
from repro.interp.values import wrap_signed
from repro.minic import compile_program

VARS = ("a", "b", "c")


@st.composite
def atoms(draw):
    kind = draw(st.sampled_from(["const", "var"]))
    if kind == "const":
        return ("const", draw(st.integers(min_value=-50, max_value=50)))
    return ("var", draw(st.sampled_from(VARS)))


@st.composite
def rhs_exprs(draw):
    op = draw(st.sampled_from(["+", "-", "*", "atom"]))
    if op == "atom":
        return ("atom", draw(atoms()))
    return (op, draw(atoms()), draw(atoms()))


@st.composite
def statements(draw, depth=2):
    kind = draw(st.sampled_from(
        ["assign", "assign", "if", "while"] if depth else ["assign"]
    ))
    if kind == "assign":
        return ("assign", draw(st.sampled_from(VARS)), draw(rhs_exprs()))
    if kind == "if":
        return (
            "if",
            draw(st.sampled_from(["<", ">", "==", "!="])),
            draw(atoms()),
            draw(atoms()),
            draw(st.lists(statements(depth=depth - 1), min_size=1,
                          max_size=3)),
        )
    # bounded while: decrements a dedicated counter.
    return (
        "while",
        draw(st.integers(min_value=0, max_value=5)),
        draw(st.lists(statements(depth=depth - 1), min_size=1,
                      max_size=2)),
    )


@st.composite
def programs(draw):
    return draw(st.lists(statements(), min_size=1, max_size=5))


# -- rendering -------------------------------------------------------------

def render_atom(atom):
    kind, value = atom
    return "({})".format(value) if kind == "const" else value


def render_rhs(rhs):
    if rhs[0] == "atom":
        return render_atom(rhs[1])
    op, left, right = rhs
    return "{} {} {}".format(render_atom(left), op, render_atom(right))


def render_stmt(stmt, indent, counter):
    pad = "  " * indent
    if stmt[0] == "assign":
        return "{}{} = {};".format(pad, stmt[1], render_rhs(stmt[2]))
    if stmt[0] == "if":
        _, op, left, right, body = stmt
        lines = ["{}if ({} {} {}) {{".format(
            pad, render_atom(left), op, render_atom(right)
        )]
        for inner in body:
            lines.append(render_stmt(inner, indent + 1, counter))
        lines.append(pad + "}")
        return "\n".join(lines)
    _, trips, body = stmt
    name = "t{}".format(next(counter))
    lines = [
        "{}{{ int {n}; {n} = {trips};".format(pad, n=name, trips=trips),
        "{}while ({n} > 0) {{ {n} = {n} - 1;".format(pad, n=name),
    ]
    for inner in body:
        lines.append(render_stmt(inner, indent + 1, counter))
    lines.append(pad + "} }")
    return "\n".join(lines)


def render_program(stmts):
    counter = iter(range(1000))
    body = "\n".join(render_stmt(s, 1, counter) for s in stmts)
    return (
        "int f(int a, int b, int c) {\n"
        + body
        + "\n  return a + 1000 * 0 + b * 0 + c * 0 + (a ^ b ^ c) * 0;\n"
        "  \n}"
    )


# -- oracle ----------------------------------------------------------------

def eval_atom(atom, env):
    kind, value = atom
    return value if kind == "const" else env[value]


def eval_rhs(rhs, env):
    if rhs[0] == "atom":
        return wrap_signed(eval_atom(rhs[1], env))
    op, left, right = rhs
    a, b = eval_atom(left, env), eval_atom(right, env)
    if op == "+":
        return wrap_signed(a + b)
    if op == "-":
        return wrap_signed(a - b)
    return wrap_signed(a * b)


def run_oracle(stmts, env):
    for stmt in stmts:
        if stmt[0] == "assign":
            env[stmt[1]] = eval_rhs(stmt[2], env)
        elif stmt[0] == "if":
            _, op, left, right, body = stmt
            a, b = eval_atom(left, env), eval_atom(right, env)
            taken = {"<": a < b, ">": a > b, "==": a == b,
                     "!=": a != b}[op]
            if taken:
                run_oracle(body, env)
        else:
            _, trips, body = stmt
            for _ in range(trips):
                run_oracle(body, env)


small = st.integers(min_value=-100, max_value=100)


class TestStatementSemantics:
    @settings(max_examples=80, deadline=None)
    @given(programs(), small, small, small)
    def test_machine_matches_oracle(self, stmts, a, b, c):
        source = render_program(stmts)
        module = compile_program(source)
        env = {"a": a, "b": b, "c": c}
        run_oracle(stmts, env)
        got = Machine(module).run("f", (a, b, c))
        assert got == env["a"], source
