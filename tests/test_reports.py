"""Unit tests for result/report types and session statistics."""

from repro import DartOptions, dart_check
from repro.dart.report import (
    BUG_FOUND,
    COMPLETE,
    DartResult,
    ErrorReport,
    EXHAUSTED,
    RunStats,
)
from repro.interp.faults import ProgramAbort
from repro.programs import samples


class TestErrorReport:
    def make(self):
        fault = ProgramAbort("abort() reached")
        return ErrorReport(fault, [1, 2, 3], iteration=7, path=(1, 0))

    def test_fields(self):
        report = self.make()
        assert report.kind == "abort"
        assert report.inputs == [1, 2, 3]
        assert report.iteration == 7
        assert report.path == (1, 0)

    def test_describe_mentions_inputs_and_run(self):
        text = self.make().describe()
        assert "run 7" in text and "[1, 2, 3]" in text


class TestRunStats:
    def test_initial_counters(self):
        stats = RunStats()
        assert stats.iterations == 0
        assert stats.paths_explored == 0

    def test_note_path_counts_distinct(self):
        stats = RunStats()
        stats.note_path((1, 0))
        stats.note_path((1, 0))
        stats.note_path((0,))
        assert stats.paths_explored == 3
        assert len(stats.distinct_paths) == 2

    def test_summary_keys(self):
        stats = RunStats()
        stats.finish()
        summary = stats.summary()
        for key in ("iterations", "paths", "solver_calls", "elapsed_s",
                    "forcing_failures", "random_restarts"):
            assert key in summary


class TestDartResult:
    def test_statuses(self):
        stats = RunStats()
        stats.finish()
        result = DartResult(COMPLETE, [], stats, (True, True, True, True))
        assert result.complete and not result.found_error
        assert result.first_error() is None
        assert "all" in result.describe()

    def test_bug_found_describe(self):
        stats = RunStats()
        stats.iterations = 3
        stats.finish()
        fault = ProgramAbort("boom")
        report = ErrorReport(fault, [5], 3)
        result = DartResult(BUG_FOUND, [report], stats,
                            (True, True, True, True))
        assert result.found_error
        assert "Bug found" in result.describe()

    def test_exhausted_describe(self):
        stats = RunStats()
        stats.finish()
        result = DartResult(EXHAUSTED, [], stats, (False, True, True))
        assert "exhausted" in result.describe().lower()


class TestSessionStatistics:
    def test_solver_accounting(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=0)
        stats = result.stats
        assert stats.solver_calls == (
            stats.solver_sat + stats.solver_unsat + stats.solver_unknown
        )
        assert stats.solver_unsat >= 1  # the infeasible inner branch

    def test_instructions_executed_accumulate(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=0)
        assert result.stats.instructions_executed > 0
        assert result.stats.branches_executed > 0
        # The directed search always runs at least one tainted
        # instruction (the driver's acquired inputs flow into branches).
        assert 0 < result.stats.instructions_symbolic \
            <= result.stats.instructions_executed

    def test_elapsed_recorded(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=0)
        assert result.stats.elapsed > 0

    def test_iterations_equal_paths_when_no_mismatch(self):
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=0)
        assert result.stats.paths_explored == result.iterations

    def test_determinism_across_sessions(self):
        a = dart_check(samples.H_SOURCE, "h", max_iterations=50, seed=12)
        b = dart_check(samples.H_SOURCE, "h", max_iterations=50, seed=12)
        assert a.status == b.status
        assert a.iterations == b.iterations
        assert a.first_error().inputs == b.first_error().inputs

    def test_different_seeds_may_differ_but_agree_on_verdict(self):
        verdicts = {
            dart_check(samples.H_SOURCE, "h",
                       max_iterations=50, seed=seed).status
            for seed in range(4)
        }
        assert verdicts == {"bug_found"}
