"""Unit tests for the mini-C parser."""

import pytest

from repro.minic import ast_nodes as ast
from repro.minic.errors import ParseError
from repro.minic.parser import parse_program


def parse(source):
    return parse_program(source)


def only_function(source):
    program = parse(source)
    funcs = [d for d in program.declarations
             if isinstance(d, ast.FunctionDef)]
    assert len(funcs) == 1
    return funcs[0]


def first_stmt(source):
    return only_function(source).body.statements[0]


class TestTopLevel:
    def test_empty_program(self):
        assert parse("").declarations == []

    def test_global_variable(self):
        program = parse("int x;")
        assert isinstance(program.declarations[0], ast.VarDecl)
        assert program.declarations[0].name == "x"

    def test_global_with_initializer(self):
        decl = parse("int x = 42;").declarations[0]
        assert isinstance(decl.init, ast.IntLit)
        assert decl.init.value == 42

    def test_multiple_declarators(self):
        program = parse("int a, b, c;")
        assert [d.name for d in program.declarations] == ["a", "b", "c"]

    def test_extern_variable(self):
        decl = parse("extern int config;").declarations[0]
        assert decl.is_extern

    def test_function_definition(self):
        func = only_function("int f(int a, char b) { return 0; }")
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]

    def test_function_prototype(self):
        decl = parse("int probe(int x);").declarations[0]
        assert isinstance(decl, ast.FunctionDecl)

    def test_void_param_list(self):
        func = only_function("int f(void) { return 1; }")
        assert func.params == []

    def test_struct_definition(self):
        decl = parse("struct point { int x; int y; };").declarations[0]
        assert isinstance(decl, ast.StructDecl)
        assert [name for name, _ in decl.fields] == ["x", "y"]

    def test_struct_forward_declaration(self):
        decl = parse("struct node;").declarations[0]
        assert isinstance(decl, ast.StructDecl)
        assert decl.fields is None

    def test_typedef_then_use(self):
        program = parse("typedef int word; word w;")
        assert isinstance(program.declarations[1], ast.VarDecl)

    def test_enum(self):
        decl = parse("enum { A = 1, B, C };").declarations[0]
        assert isinstance(decl, ast.EnumDecl)
        assert [name for name, _ in decl.enumerators] == ["A", "B", "C"]

    def test_pointer_declarator(self):
        decl = parse("int *p;").declarations[0]
        assert isinstance(decl.type_expr, ast.PointerTypeExpr)

    def test_double_pointer(self):
        decl = parse("char **argv;").declarations[0]
        assert isinstance(decl.type_expr.pointee, ast.PointerTypeExpr)

    def test_array_declarator(self):
        decl = parse("int a[10];").declarations[0]
        assert isinstance(decl.type_expr, ast.ArrayTypeExpr)

    def test_two_dimensional_array(self):
        decl = parse("int grid[2][3];").declarations[0]
        assert isinstance(decl.type_expr.element, ast.ArrayTypeExpr)
        assert decl.type_expr.length_expr.value == 2

    def test_variadic_rejected(self):
        with pytest.raises(ParseError):
            parse("int printf2(char *fmt, ...);")


class TestStatements:
    def test_if_else(self):
        stmt = first_stmt("int f(int x) { if (x) return 1; else return 0; }")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = first_stmt(
            "int f(int x) { if (x) if (x > 1) return 2; else return 1;"
            " return 0; }"
        )
        assert stmt.otherwise is None
        assert isinstance(stmt.then, ast.If)
        assert stmt.then.otherwise is not None

    def test_while(self):
        stmt = first_stmt("int f(int x) { while (x) x = x - 1; return 0; }")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = first_stmt("int f(int x) { do x--; while (x); return 0; }")
        assert isinstance(stmt, ast.DoWhile)

    def test_for_with_decl_init(self):
        stmt = first_stmt(
            "int f(void) { for (int i = 0; i < 3; i++) ; return 0; }"
        )
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_all_parts_empty(self):
        stmt = first_stmt("int f(void) { for (;;) break; return 0; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        func = only_function(
            "int f(void) { while (1) { break; } while (1) { continue; }"
            " return 0; }"
        )
        loops = [s for s in func.body.statements
                 if isinstance(s, ast.While)]
        assert isinstance(loops[0].body.statements[0], ast.Break)
        assert isinstance(loops[1].body.statements[0], ast.Continue)

    def test_assert_statement(self):
        stmt = first_stmt("int f(int x) { assert(x > 0); return x; }")
        assert isinstance(stmt, ast.AssertStmt)

    def test_abort_statement(self):
        stmt = first_stmt("int f(void) { abort(); }")
        assert isinstance(stmt, ast.AbortStmt)

    def test_local_declarations(self):
        stmt = first_stmt("int f(void) { int a, b; return 0; }")
        assert isinstance(stmt, ast.DeclStmt)
        assert [d.name for d in stmt.decls] == ["a", "b"]

    def test_empty_statement(self):
        stmt = first_stmt("int f(void) { ; return 0; }")
        assert isinstance(stmt, ast.ExprStmt)
        assert stmt.expr is None

    def test_switch_parses(self):
        stmt = first_stmt(
            "int f(int x) { switch (x) { case 1: return 1; default: ; }"
            " return 0; }"
        )
        assert isinstance(stmt, ast.Switch)

    def test_goto_rejected_with_clear_error(self):
        with pytest.raises(ParseError, match="goto"):
            parse("int f(int x) { goto out; out: return 0; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return 0 }")


class TestExpressions:
    def expr(self, text):
        return first_stmt("int f(int x, int y) { " + text + "; return 0; }").expr

    def test_precedence_mul_over_add(self):
        e = self.expr("x = 1 + 2 * 3")
        assert isinstance(e.value, ast.Binary) and e.value.op == "+"
        assert e.value.right.op == "*"

    def test_comparison_precedence(self):
        e = self.expr("x = 1 + 2 < 3")
        assert e.value.op == "<"

    def test_logical_precedence(self):
        e = self.expr("x = 1 && 2 || 3")
        assert e.value.op == "||"
        assert e.value.left.op == "&&"

    def test_assignment_right_associative(self):
        e = self.expr("x = y = 1")
        assert isinstance(e.value, ast.Assign)

    def test_compound_assignment(self):
        e = self.expr("x += 2")
        assert e.op == "+="

    def test_ternary(self):
        e = self.expr("x = y ? 1 : 2")
        assert isinstance(e.value, ast.Conditional)

    def test_unary_chain(self):
        e = self.expr("x = -~!y")
        assert e.value.op == "-"
        assert e.value.operand.op == "~"
        assert e.value.operand.operand.op == "!"

    def test_prefix_and_postfix_incr(self):
        assert isinstance(self.expr("++x"), ast.Unary)
        assert isinstance(self.expr("x++"), ast.Postfix)

    def test_call_with_args(self):
        e = self.expr("f(x, y)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_index_chained(self):
        e = self.expr("x = y[1]")
        assert isinstance(e.value, ast.Index)

    def test_member_and_arrow(self):
        program = parse(
            "struct s { int v; };"
            "int f(struct s a, struct s *p) { return a.v + p->v; }"
        )
        ret = program.declarations[1].body.statements[0]
        assert isinstance(ret.value.left, ast.Member)
        assert not ret.value.left.arrow
        assert ret.value.right.arrow

    def test_sizeof_type_and_expr(self):
        e = self.expr("x = sizeof(int)")
        assert isinstance(e.value, ast.SizeofType)
        e = self.expr("x = sizeof x")
        assert isinstance(e.value, ast.SizeofExpr)

    def test_cast(self):
        program = parse(
            "typedef int myint;"
            "int f(int x) { return (myint) x; }"
        )
        ret = program.declarations[1].body.statements[0]
        assert isinstance(ret.value, ast.Cast)

    def test_cast_of_pointer(self):
        e = self.expr("x = x + sizeof(char *)")
        assert isinstance(e.value.right, ast.SizeofType)

    def test_parenthesized_ident_is_not_cast(self):
        e = self.expr("x = (y)")
        assert isinstance(e.value, ast.Ident)

    def test_null_keyword(self):
        e = self.expr("x = NULL")
        assert isinstance(e.value, ast.IntLit)
        assert e.value.value == 0

    def test_comma_expression(self):
        e = self.expr("x = (y = 1, 2)")
        assert isinstance(e.value, ast.Comma)

    def test_char_literal_expression(self):
        e = self.expr("x = 'Z'")
        assert e.value.value == 90

    def test_string_literal(self):
        program = parse('int f(void) { char *s; s = "hi"; return 0; }')
        assign = program.declarations[0].body.statements[1].expr
        assert isinstance(assign.value, ast.StringLit)
        assert assign.value.data == b"hi"

    def test_deep_paren_nesting(self):
        e = self.expr("x = ((((y))))")
        assert isinstance(e.value, ast.Ident)

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse("int f(void) { return (1; }")
