"""Property-based differential testing of the interpreter.

Hypothesis generates random arithmetic expression trees; each is compiled
as a mini-C function and executed by the Machine, and the result is
compared against a Python oracle implementing C99 int32 semantics
(wrap-around, truncation toward zero, etc.).  A disagreement means the
interpreter's concrete semantics — the ground truth every DART verdict
rests on (Theorem 1(a)) — is wrong.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.interp import Machine
from repro.interp.values import c_div, c_mod, wrap_signed
from repro.minic import compile_program

INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1

# -- expression tree generation -------------------------------------------

_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "==", "!=",
           "<=", ">="]
_UNOPS = ["-", "~", "!"]


class _Node:
    __slots__ = ("op", "children", "value")

    def __init__(self, op, children=(), value=None):
        self.op = op
        self.children = children
        self.value = value


@st.composite
def expr_trees(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from(["const", "x", "y"]))
        if kind == "const":
            return _Node("const", value=draw(
                st.integers(min_value=-100, max_value=100)
            ))
        return _Node(kind)
    if draw(st.integers(min_value=0, max_value=3)) == 0:
        child = draw(expr_trees(depth=depth - 1))
        return _Node(draw(st.sampled_from(_UNOPS)), (child,))
    left = draw(expr_trees(depth=depth - 1))
    right = draw(expr_trees(depth=depth - 1))
    return _Node(draw(st.sampled_from(_BINOPS)), (left, right))


def to_c(node):
    if node.op == "const":
        # Negative literals via unary minus (C has no negative literals).
        return "({})".format(node.value)
    if node.op in ("x", "y"):
        return node.op
    if len(node.children) == 1:
        return "({}{})".format(node.op, to_c(node.children[0]))
    return "({} {} {})".format(
        to_c(node.children[0]), node.op, to_c(node.children[1])
    )


class _DivByZero(Exception):
    pass


def oracle(node, x, y):
    """Evaluate with C99 int32 semantics."""
    if node.op == "const":
        return node.value
    if node.op == "x":
        return x
    if node.op == "y":
        return y
    if len(node.children) == 1:
        value = oracle(node.children[0], x, y)
        if node.op == "-":
            return wrap_signed(-value)
        if node.op == "~":
            return wrap_signed(~value)
        return 0 if value else 1
    left = oracle(node.children[0], x, y)
    right = oracle(node.children[1], x, y)
    if node.op == "+":
        return wrap_signed(left + right)
    if node.op == "-":
        return wrap_signed(left - right)
    if node.op == "*":
        return wrap_signed(left * right)
    if node.op == "/":
        if right == 0:
            raise _DivByZero()
        return wrap_signed(c_div(left, right))
    if node.op == "%":
        if right == 0:
            raise _DivByZero()
        return wrap_signed(c_mod(left, right))
    if node.op == "&":
        return wrap_signed(left & right)
    if node.op == "|":
        return wrap_signed(left | right)
    if node.op == "^":
        return wrap_signed(left ^ right)
    return 1 if {
        "<": left < right,
        ">": left > right,
        "==": left == right,
        "!=": left != right,
        "<=": left <= right,
        ">=": left >= right,
    }[node.op] else 0


small_ints = st.integers(min_value=-1000, max_value=1000)
full_ints = st.integers(min_value=INT_MIN, max_value=INT_MAX)


class TestDifferentialExecution:
    @settings(max_examples=120, deadline=None)
    @given(expr_trees(), small_ints, small_ints)
    def test_machine_matches_c_oracle(self, tree, x, y):
        source = "int f(int x, int y) {{ return {}; }}".format(to_c(tree))
        module = compile_program(source)
        try:
            expected = oracle(tree, x, y)
        except _DivByZero:
            return  # UB in C; the machine reports a fault instead
        assert Machine(module).run("f", (x, y)) == expected

    @settings(max_examples=60, deadline=None)
    @given(expr_trees(depth=2), full_ints, full_ints)
    def test_extreme_values_wrap_identically(self, tree, x, y):
        source = "int f(int x, int y) {{ return {}; }}".format(to_c(tree))
        module = compile_program(source)
        try:
            expected = oracle(tree, x, y)
        except _DivByZero:
            return
        assert Machine(module).run("f", (x, y)) == expected

    @settings(max_examples=60, deadline=None)
    @given(expr_trees(depth=2), small_ints, small_ints)
    def test_condition_agrees_with_value(self, tree, x, y):
        """``if (e)`` must take the then branch iff e evaluates nonzero."""
        c_text = to_c(tree)
        source = (
            "int f(int x, int y) {{\n"
            "  if ({}) return 1;\n"
            "  return 0;\n"
            "}}".format(c_text)
        )
        module = compile_program(source)
        try:
            expected = 1 if oracle(tree, x, y) != 0 else 0
        except _DivByZero:
            return
        assert Machine(module).run("f", (x, y)) == expected


class TestConcolicConsistency:
    """The symbolic half must never contradict the concrete half: whatever
    constraint a branch records, the *concrete* branch outcome satisfies
    it under the current input assignment."""

    @settings(max_examples=80, deadline=None)
    @given(expr_trees(depth=2), small_ints, small_ints)
    def test_recorded_constraints_hold_on_current_inputs(self, tree, x, y):
        import random as random_module

        from repro.dart.config import DartOptions
        from repro.dart.inputs import InputVector
        from repro.dart.instrument import DirectedHooks
        from repro.symbolic.flags import CompletenessFlags

        source = (
            "void main_(void) {{\n"
            "  int x; int y;\n"
            "  x = __dart_int();\n"
            "  y = __dart_int();\n"
            "  if ({}) {{ }}\n"
            "}}".format(to_c(tree))
        )
        module = compile_program(source)
        im = InputVector()
        im.record(0, "int", x)
        im.record(1, "int", y)
        flags = CompletenessFlags()
        hooks = DirectedHooks(im, [], flags, random_module.Random(0),
                              DartOptions())
        try:
            Machine(module, hooks=hooks, flags=flags).run("main_", ())
        except Exception:
            return  # division faults etc. are fine here
        assignment = {0: x, 1: y}
        for constraint in hooks.record.constraints:
            if constraint is None:
                continue
            assert constraint.evaluate(assignment), (
                "recorded constraint {} contradicts the concrete run "
                "for x={}, y={}".format(constraint, x, y)
            )
