"""End-to-end: every input kind is solvable within its machine domain."""

import pytest

from repro import dart_check


class TestTypedInputs:
    def test_char_input_solved_in_domain(self):
        source = "int f(char c) { if (c == 'Z') abort(); return 0; }"
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs == [ord("Z")]

    def test_negative_char_target(self):
        source = "int f(char c) { if (c == -100) abort(); return 0; }"
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs == [-100]

    def test_char_cannot_reach_out_of_range_value(self):
        # c == 300 is infeasible for a signed char: DART must prove it.
        source = "int f(char c) { if (c == 300) abort(); return 0; }"
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.status == "complete"
        assert not result.found_error

    def test_short_input(self):
        source = "int f(short s) { if (s == 31000) abort(); return 0; }"
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error

    def test_unsigned_input_large_value(self):
        source = """
        int f(unsigned int u) {
          if (u > 4000000000) abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs[0] > 4_000_000_000

    def test_unsigned_char_boundary(self):
        source = """
        int f(unsigned char c) {
          if (c == 255) abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs == [255]

    def test_mixed_kinds_in_one_constraint(self):
        source = """
        int f(char c, int n) {
          if (n == c + 1000) abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        c, n = result.first_error().inputs
        assert n == c + 1000
        assert -128 <= c <= 127

    def test_struct_field_of_narrow_type(self):
        source = """
        struct msg { char tag; short len; };
        int f(struct msg *m) {
          if (m == NULL) return -1;
          if (m->tag == 'Q' && m->len == 1234) abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=200, seed=0)
        assert result.found_error
        inputs = result.first_error().inputs
        assert inputs[0] == 1  # coin: allocate
        assert inputs[1] == ord("Q")
        assert inputs[2] == 1234

    def test_external_function_return_is_an_input(self):
        source = """
        int sensor_read(void);
        int f(void) {
          int value;
          value = sensor_read();
          if (value == 123123) abort();
          return value;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs == [123123]

    def test_external_char_function(self):
        source = """
        char next_byte(void);
        int f(void) {
          if (next_byte() == 'X') abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error

    def test_non_unit_coefficient_branch_solved(self):
        # Needs the Omega transformation: no +/-1 coefficient anywhere.
        source = """
        int f(int x, int y) {
          if (3 * x + 5 * y == 1)
            abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.found_error
        x, y = result.first_error().inputs
        # Solved over mathematical integers; verify no wrap interfered.
        assert (3 * x + 5 * y - 1) % (1 << 32) == 0

    def test_depth_reads_fresh_inputs_each_call(self):
        source = """
        int total = 0;
        int accumulate(int v) {
          if (v < 0) return -1;
          if (v > 100) return -2;
          total = total + v;
          if (total == 150) abort();
          return total;
        }
        """
        result = dart_check(source, "accumulate", depth=2,
                            max_iterations=2000, seed=0)
        assert result.found_error
        a, b = result.first_error().inputs
        assert 0 <= a <= 100 and 0 <= b <= 100
        assert a + b == 150
