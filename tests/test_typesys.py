"""Unit tests for the mini-C type system (sizes, layout, conversions)."""

import pytest

from repro.minic import typesys as ts
from repro.minic.errors import SemanticError


class TestScalarTypes:
    def test_sizes(self):
        assert ts.CHAR.size == 1
        assert ts.SHORT.size == 2
        assert ts.INT.size == 4
        assert ts.UINT.size == 4
        assert ts.PointerType(ts.INT).size == 4

    def test_ranges(self):
        assert ts.CHAR.min_value == -128 and ts.CHAR.max_value == 127
        assert ts.UCHAR.min_value == 0 and ts.UCHAR.max_value == 255
        assert ts.INT.min_value == -(1 << 31)
        assert ts.UINT.max_value == (1 << 32) - 1

    def test_equality_is_structural(self):
        assert ts.IntType(4, signed=True) == ts.INT
        assert ts.IntType(4, signed=False) != ts.INT
        assert ts.PointerType(ts.INT) == ts.PointerType(ts.INT)
        assert ts.PointerType(ts.INT) != ts.PointerType(ts.CHAR)

    def test_predicates(self):
        assert ts.INT.is_integer() and ts.INT.is_scalar()
        assert ts.PointerType(ts.VOID).is_pointer()
        assert not ts.VOID.is_complete()

    def test_str_rendering(self):
        assert str(ts.INT) == "int"
        assert str(ts.UCHAR) == "unsigned char"
        assert str(ts.PointerType(ts.CHAR)) == "char*"


class TestArrays:
    def test_size(self):
        assert ts.ArrayType(ts.INT, 10).size == 40
        assert ts.ArrayType(ts.CHAR, 7).size == 7

    def test_alignment_follows_element(self):
        assert ts.ArrayType(ts.INT, 3).alignment == 4
        assert ts.ArrayType(ts.CHAR, 3).alignment == 1

    def test_decay(self):
        decayed = ts.ArrayType(ts.INT, 5).decay()
        assert decayed == ts.PointerType(ts.INT)

    def test_incomplete_array(self):
        assert not ts.ArrayType(ts.INT, None).is_complete()

    def test_negative_length_rejected(self):
        with pytest.raises(SemanticError):
            ts.ArrayType(ts.INT, -1)


class TestStructLayout:
    def make(self, *fields):
        struct = ts.StructType("s")
        struct.define([ts.StructField(n, t) for n, t in fields])
        return struct

    def test_packed_same_type(self):
        struct = self.make(("a", ts.INT), ("b", ts.INT))
        assert struct.size == 8
        assert struct.field("b").offset == 4

    def test_padding_for_alignment(self):
        # char at 0, int must start at 4 -> size 8.
        struct = self.make(("c", ts.CHAR), ("i", ts.INT))
        assert struct.field("i").offset == 4
        assert struct.size == 8

    def test_tail_padding(self):
        # The paper's struct foo { int i; char c; }: c at offset 4
        # (== sizeof(int), the aliasing offset used in Section 2.5),
        # total size rounded to 8.
        struct = self.make(("i", ts.INT), ("c", ts.CHAR))
        assert struct.field("c").offset == 4
        assert struct.size == 8

    def test_short_packing(self):
        struct = self.make(("a", ts.CHAR), ("b", ts.SHORT), ("c", ts.CHAR))
        assert struct.field("b").offset == 2
        assert struct.field("c").offset == 4
        assert struct.size == 6

    def test_nested_struct_field(self):
        inner = self.make(("x", ts.INT), ("y", ts.INT))
        outer = ts.StructType("outer")
        outer.define([
            ts.StructField("tag", ts.CHAR),
            ts.StructField("pt", inner),
        ])
        assert outer.field("pt").offset == 4
        assert outer.size == 12

    def test_unknown_field_rejected(self):
        struct = self.make(("a", ts.INT))
        with pytest.raises(SemanticError):
            struct.field("nope")

    def test_redefinition_rejected(self):
        struct = self.make(("a", ts.INT))
        with pytest.raises(SemanticError):
            struct.define([ts.StructField("b", ts.INT)])

    def test_incomplete_struct_use_rejected(self):
        struct = ts.StructType("fwd")
        with pytest.raises(SemanticError):
            struct.field("a")

    def test_identity_equality(self):
        a = self.make(("x", ts.INT))
        b = ts.StructType("s")
        b.define([ts.StructField("x", ts.INT)])
        assert a != b  # same shape, different tags/identities
        assert a == a


class TestConversions:
    def test_integer_promotion(self):
        assert ts.integer_promote(ts.CHAR) == ts.INT
        assert ts.integer_promote(ts.SHORT) == ts.INT
        assert ts.integer_promote(ts.UINT) == ts.UINT

    def test_usual_arithmetic_conversions(self):
        assert ts.usual_arithmetic_conversion(ts.INT, ts.INT) == ts.INT
        assert ts.usual_arithmetic_conversion(ts.INT, ts.UINT) == ts.UINT
        assert ts.usual_arithmetic_conversion(ts.CHAR, ts.CHAR) == ts.INT

    def test_function_type_equality(self):
        f1 = ts.FunctionType(ts.INT, [ts.INT, ts.PointerType(ts.CHAR)])
        f2 = ts.FunctionType(ts.INT, [ts.INT, ts.PointerType(ts.CHAR)])
        f3 = ts.FunctionType(ts.INT, [ts.INT])
        assert f1 == f2 and f1 != f3
