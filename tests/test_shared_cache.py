"""The pool's shared solver-result store under real concurrency.

Three layers of assurance for `repro.solver.shared`:

* **Key discipline** — the shared key is the *verbatim* query identity
  (ordered conjuncts, sorted domains, encoding version first), strictly
  finer than the local cache's canonical set key.
* **Protocol** — lookup/claim/wait/resolve over real pipes: decided
  results hit, unknown resolves hand every waiter a fresh claim, dead
  claimants release their claims, and a stale-encoding entry can never
  answer a current-version query.
* **Concurrency property (hypothesis)** — many threads racing random
  workloads, with entries stored under two encoding versions and two
  run namespaces, never receive an answer that was stored for a
  different key: no stale-encoding hits, no cross-run hits, every hit
  byte-equal to what the claimant resolved for exactly that key.

A chaos-style end-to-end check kills a pool worker right after it
claims an item another worker was nominated for (a death mid-steal) and
pins that the session recovers to the serial engine's exact error set.
"""

import threading

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import DartOptions
from repro.dart.runner import Dart
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.solver.cache import ENCODING_VERSION, EXACT, SolverResultCache
from repro.solver.core import SolverResult
from repro.solver.shared import (
    CacheServer,
    SharedCacheClient,
    shared_query_key,
)
from repro.symbolic.expr import GE, LE, LT, CmpExpr, LinExpr


def cmp(op, coeffs, const=0):
    return CmpExpr(op, LinExpr(dict(coeffs), const))


X_POS = cmp(GE, {0: 1}, -1)      # x - 1 >= 0
Y_SMALL = cmp(LE, {1: 1}, -5)    # y - 5 <= 0
X_NEG = cmp(LT, {0: 1})          # x < 0


class TestSharedQueryKey:
    def test_version_is_first_component(self):
        key = shared_query_key([X_POS], {})
        assert key[0] == ENCODING_VERSION

    def test_conjunct_order_distinguishes(self):
        # Verbatim identity: a permuted conjunct list is a *different*
        # shared key (the solver sees different input, so the models may
        # differ), even though the canonical local key collapses it.
        ordered = shared_query_key([X_POS, Y_SMALL], {})
        permuted = shared_query_key([Y_SMALL, X_POS], {})
        assert ordered != permuted
        assert SolverResultCache.query_key([X_POS, Y_SMALL], {}) == \
            SolverResultCache.query_key([Y_SMALL, X_POS], {})

    def test_strict_spellings_distinguish(self):
        # lin < 0 and lin + 1 <= 0 canonicalize together locally but must
        # stay distinct shared keys (different solver input).
        strict = shared_query_key([X_NEG], {})
        nonstrict = shared_query_key(
            [CmpExpr(LE, LinExpr({0: 1}, 1))], {})
        assert strict != nonstrict
        assert SolverResultCache.query_key([X_NEG], {}) == \
            SolverResultCache.query_key(
                [CmpExpr(LE, LinExpr({0: 1}, 1))], {})

    def test_domains_distinguish(self):
        narrow = shared_query_key([X_POS], {0: (0, 5)})
        wide = shared_query_key([X_POS], {0: (0, 50)})
        defaulted = shared_query_key([X_POS], {})
        assert len({narrow, wide, defaulted}) == 3


class _Harness:
    """One CacheServer plus raw client connections, torn down cleanly."""

    def __init__(self, workers=2):
        self.server = CacheServer()
        self.conns = []
        self.wids = []
        for _ in range(workers):
            wid, conn = self.server.register_worker()
            self.wids.append(wid)
            self.conns.append(conn)
        self.server.start()

    def close(self):
        self.server.stop()
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass


class TestClaimProtocol:
    def run_harness(self, body, workers=2):
        harness = _Harness(workers)
        try:
            return body(harness)
        finally:
            harness.close()

    def test_claim_then_resolve_then_hit(self):
        def body(harness):
            first, second = harness.conns
            key = shared_query_key([X_POS], {})
            first.send(("lookup", key))
            assert first.recv() == ("claimed",)
            first.send(("resolve", key, "sat", {0: 1}))
            second.send(("lookup", key))
            assert second.recv() == ("hit", "sat", {0: 1})
            assert len(harness.server) == 1
        self.run_harness(body)

    def test_unknown_resolve_releases_waiter_with_fresh_claim(self):
        def body(harness):
            first, second = harness.conns
            key = shared_query_key([X_POS], {})
            first.send(("lookup", key))
            assert first.recv() == ("claimed",)
            second.send(("lookup", key))  # queued behind the claimant
            first.send(("resolve", key, "unknown", None))
            # Unknown is never stored; the waiter gets its own claim and
            # will solve the query itself (per-occurrence, like serial).
            assert second.recv() == ("claimed",)
            assert len(harness.server) == 0
        self.run_harness(body)

    def test_dead_claimant_releases_waiters(self):
        def body(harness):
            first, second = harness.conns
            key = shared_query_key([Y_SMALL], {})
            first.send(("lookup", key))
            assert first.recv() == ("claimed",)
            second.send(("lookup", key))
            # The pool's death path: parent reaps the worker and frees
            # its claims; the waiter must come back with a fresh claim,
            # not hang on the dead solver.
            harness.server.release_worker(harness.wids[0])
            assert second.recv() == ("claimed",)
        self.run_harness(body)

    def test_stale_encoding_entry_never_answers_current_version(self):
        def body(harness):
            first, second = harness.conns
            current = shared_query_key([X_POS], {})
            stale = (ENCODING_VERSION - 1,) + current[1:]
            first.send(("lookup", stale))
            assert first.recv() == ("claimed",)
            first.send(("resolve", stale, "unsat", None))
            # Same constraints, current encoding: must miss (claim), the
            # stale-generation verdict is unreachable by construction.
            second.send(("lookup", current))
            assert second.recv() == ("claimed",)
        self.run_harness(body)

    def test_client_facade_round_trip(self):
        def body(harness):
            client_a = SharedCacheClient(harness.conns[0])
            client_b = SharedCacheClient(harness.conns[1])
            constraints, domains = [X_POS, Y_SMALL], {0: (0, 9)}
            assert client_a.lookup(constraints, domains) is None  # claim
            client_a.store(constraints, domains,
                           SolverResult("sat", {0: 1, 1: 2}))
            hit = client_b.lookup(constraints, domains)
            assert hit is not None
            result, tier = hit
            assert tier == EXACT
            assert result.status == "sat"
            assert result.model == {0: 1, 1: 2}
            # begin_item drops the local layer but the shared store
            # still answers the verbatim spelling...
            client_b.begin_item()
            assert client_b.lookup(constraints, domains) is not None
            # ...while a *permuted* spelling only hits through the local
            # canonical tiers (seeded by the shared hit above); on a
            # fresh item it misses the shared store and claims.
            assert client_b.lookup([Y_SMALL, X_POS], domains) is not None
            client_b.begin_item()
            assert client_b.lookup([Y_SMALL, X_POS], domains) is None
            client_b.store([Y_SMALL, X_POS], domains,
                           SolverResult("unknown"))  # release the claim
        self.run_harness(body)


# -- the concurrency property -------------------------------------------------

# A workload step: (key id, stale encoding?, run namespace).  Key ids
# collide across steps on purpose — that is what exercises the
# hit/wait/claim races.
steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=11), st.booleans(),
              st.integers(min_value=0, max_value=1)),
    min_size=4, max_size=48,
)


def _expected(key_id, version, run):
    """The unique decided result for one fully-qualified key."""
    if key_id % 3 == 0:
        return ("unsat", None)
    return ("sat", {0: key_id * 100 + version * 10 + run})


@settings(deadline=None, max_examples=30)
@given(steps, st.integers(min_value=2, max_value=4))
def test_concurrent_lookups_never_return_stale_or_cross_run(ops, threads):
    """No interleaving of claims/hits/waits ever crosses key boundaries.

    Entries live under two encoding versions and two run namespaces;
    every thread checks that each hit carries exactly the value resolved
    for its own fully-qualified key — a stale-encoding or cross-run
    answer would surface as a mismatched verdict or model.
    """
    harness = _Harness(workers=threads)
    failures = []

    def drive(conn, slice_ops):
        try:
            for key_id, stale, run in slice_ops:
                version = ENCODING_VERSION - (1 if stale else 0)
                key = (version, ("k", key_id, run), ())
                status, model = _expected(key_id, version, run)
                conn.send(("lookup", key))
                reply = conn.recv()
                if reply[0] == "claimed":
                    conn.send(("resolve", key, status, model))
                else:
                    assert reply == ("hit", status, model), \
                        "cross-key answer: {} for {}".format(reply, key)
        except BaseException as exc:  # noqa: BLE001 — reported below
            failures.append("{}: {}".format(type(exc).__name__, exc))

    try:
        workers = []
        for index in range(threads):
            slice_ops = ops[index::threads]
            worker = threading.Thread(
                target=drive, args=(harness.conns[index], slice_ops))
            worker.start()
            workers.append(worker)
        for worker in workers:
            worker.join(timeout=30)
        assert failures == []
    finally:
        harness.close()


# -- chaos: a worker dies mid-steal ------------------------------------------


def _error_keys(result):
    return sorted({(e.kind, str(e.location)) for e in result.errors})


class TestWorkerDeathMidSteal:
    def test_kill_mid_steal_recovers_serial_error_set(self):
        # Index 2's round-robin nominee is worker 1, but with the pool
        # window open whichever worker frees up first claims it — the
        # kill rides the claim, so the death lands mid-steal whenever
        # the claimant is not the nominee, and right after a steal
        # otherwise.  Either way the parent must re-dispatch the claimed
        # item once and converge on the undisturbed error set.
        options = dict(depth=2, strategy="bfs", seed=3,
                       max_iterations=400, stop_on_first_error=False)
        serial = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                      DartOptions(jobs=1, **options)).run()
        chaotic = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                       DartOptions(jobs=2, fault_plan="worker.kill@2",
                                   **options)).run()
        assert chaotic.stats.faults_injected == 1
        assert chaotic.stats.pool_workers_lost == 1
        assert chaotic.stats.pool_retries == 1
        assert _error_keys(chaotic) == _error_keys(serial)
        assert chaotic.status == serial.status
        assert chaotic.stats.iterations == serial.stats.iterations
