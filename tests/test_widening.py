"""Machine-integer widening: the bit-precise encoding behind PR 5.

Three layers of defense for one claim — a widened conjunct means exactly
what the machine computed:

* unit tests pin the :class:`WidenedCmp` algebra (negation keeps the
  window guards, variables include guard-only lanes, keys never collide
  with plain comparisons, ``machine_verdict`` is genuine mod-2³² fold);
* hypothesis properties check the Widener against randomly built lanes:
  every widened conjunct is satisfied by its own concrete run, its
  negation is falsified by it, and any model inside the guard window
  agrees with wrapped machine semantics;
* end-to-end sessions on overflow-sensitive programs assert the funnel:
  conjuncts are widened, nothing is dropped, ``all_faithful`` holds and
  the search stays directed.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dart.config import DartOptions
from repro.dart.runner import Dart
from repro.symbolic.expr import CmpExpr, EQ, GE, GT, LE, LT, NE, LinExpr
from repro.symbolic.flags import CompletenessFlags
from repro.symbolic.widen import (
    _COMPARISONS,
    _ideal_bounds,
    SIGNED_WINDOW,
    UNSIGNED_WINDOW,
    WRAP,
    WidenedCmp,
    Widener,
    flatten_constraints,
)

OPS = (EQ, NE, LT, LE, GT, GE)

INT_MIN, INT_MAX = SIGNED_WINDOW
UINT_MAX = UNSIGNED_WINDOW[1]


def fold(ideal, window):
    """What the machine computes for an ideal value: wrap into window."""
    lo, _ = window
    return lo + ((ideal - lo) % WRAP)


def make_widener():
    return Widener(CompletenessFlags())


# -- WidenedCmp unit tests ---------------------------------------------------


def sample_widened():
    """x0 − 2³² < 0 with guards keeping x0 − 2³² in the signed window."""
    widened = LinExpr({0: 1}, -WRAP)
    guards = (
        CmpExpr(GE, widened.add_const(-INT_MIN)),
        CmpExpr(LE, widened.add_const(-INT_MAX)),
    )
    return WidenedCmp(LT, widened, guards, ((LinExpr({0: 1}), INT_MIN,
                                             INT_MAX),))


class TestWidenedCmp:
    def test_evaluate_is_primary_and_guards(self):
        conjunct = sample_widened()
        # Primary holds, guards hold.
        assert conjunct.evaluate({0: WRAP - 5})
        # Primary holds but the value is outside the anchored window.
        assert CmpExpr.evaluate(conjunct, {0: -5})
        assert not conjunct.evaluate({0: -5})

    def test_negate_flips_primary_and_keeps_guards(self):
        conjunct = sample_widened()
        negated = conjunct.negate()
        assert isinstance(negated, WidenedCmp)
        assert negated.op == GE
        assert negated.guards == conjunct.guards
        assert negated.lanes == conjunct.lanes
        assert not negated.evaluate({0: WRAP - 5})
        assert negated.evaluate({0: WRAP + 5})

    def test_variables_include_guard_only_lanes(self):
        # x0 − x1 == 0 where both lanes carry x0 and x1 through the
        # guards: the primary difference cancels nothing here, so build
        # one where it does — left = x0 + x1, right = x1 + x0.
        left = LinExpr({0: 1, 1: 1})
        right = LinExpr({1: 1, 0: 1})
        guards = (
            CmpExpr(GE, left.add_const(-INT_MIN)),
            CmpExpr(LE, left.add_const(-INT_MAX)),
            CmpExpr(GE, right.add_const(-INT_MIN)),
            CmpExpr(LE, right.add_const(-INT_MAX)),
        )
        conjunct = WidenedCmp(EQ, left.sub(right), guards)
        assert left.sub(right).variables() == set()  # the cancellation
        assert conjunct.variables() == {0, 1}  # ...the guards still see

    def test_key_is_tagged_and_distinct_from_plain_cmp(self):
        conjunct = sample_widened()
        plain = CmpExpr(LT, conjunct.lin)
        assert conjunct.key() != plain.key()
        assert conjunct.key()[0] == "widened"
        # Same difference, different guards -> different identity.
        other = WidenedCmp(LT, conjunct.lin, conjunct.guards[:1])
        assert conjunct.key() != other.key()
        assert conjunct != other

    def test_machine_verdict_folds_lanes(self):
        conjunct = sample_widened()
        # Ideal x0 = 3: machine sees 3, 3 < 0 is False; the widened
        # primary (3 - 2³² < 0) is True but the guards exclude it.
        assert not conjunct.machine_verdict({0: 3})
        assert not conjunct.evaluate({0: 3})
        # Ideal x0 = 2³² - 5: machine wraps to -5, -5 < 0 is True.
        assert conjunct.machine_verdict({0: WRAP - 5})

    def test_flatten_expands_widened_only(self):
        conjunct = sample_widened()
        plain = CmpExpr(GE, LinExpr({1: 1}))
        flat = flatten_constraints([plain, conjunct])
        assert flat[0] is plain
        assert flat[1:] == [CmpExpr(LT, conjunct.lin)] + list(
            conjunct.guards)
        assert all(type(c) is CmpExpr for c in flat[1:])


# -- Widener unit tests ------------------------------------------------------


class TestWidener:
    def test_faithful_checks_against_the_run(self):
        widener = make_widener()
        widener.note_input(0, 7)
        conjunct = CmpExpr(GT, LinExpr({0: 1}))  # x0 > 0
        assert widener.faithful(conjunct, True)
        assert not widener.faithful(conjunct, False)
        # Unknown variable: not faithful (never a crash).
        assert not widener.faithful(CmpExpr(GT, LinExpr({9: 1})), True)

    def test_unsigned_compare_is_widened_not_dropped(self):
        # The corpus seed125166496 shape: unsigned p2 >= -28 is True on
        # the machine (the -28 wraps to 2³²-28... actually the *lane*
        # values are compared unsigned), recorded ideally as false.
        widener = make_widener()
        widener.note_input(0, -28)  # int input, machine value -28
        lin = LinExpr({0: 1})
        anchor = fold(-28, UNSIGNED_WINDOW)  # what unsigned compare sees
        conjunct = widener.widen_compare(
            GE, anchor, lin, 5, None, True, anchor >= 5)
        assert conjunct is not None
        assert widener.widened == 1 and widener.dropped == 0
        assert widener.flags.all_faithful
        assert conjunct.evaluate(widener.assignment)
        assert conjunct.machine_verdict(widener.assignment)

    def test_non_exact_quotient_is_an_honest_drop(self):
        # A narrow-type wrap: ideal and machine differ by 256, not 2³².
        widener = make_widener()
        widener.note_input(0, 5)
        conjunct = widener.widen_truth_test(
            NE, 5 + 256, LinExpr({0: 1}), False, True)
        assert conjunct is None
        assert widener.dropped == 1 and widener.widened == 0
        assert not widener.flags.all_faithful

    def test_non_linear_lane_is_an_honest_drop(self):
        widener = make_widener()
        widener.note_input(0, 5)
        conjunct = widener.widen_compare(
            EQ, 5, object(), 5, None, False, True)
        assert conjunct is None
        assert not widener.flags.all_faithful

    def test_drop_returns_none_for_direct_use(self):
        widener = make_widener()
        assert widener.drop_unfaithful() is None
        assert widener.dropped == 1


# -- hypothesis: the own-run and bit-precision properties --------------------

lane_lins = st.one_of(
    st.none(),
    st.builds(
        lambda items, const: LinExpr(dict(items), const),
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=-4, max_value=4)),
            min_size=1, max_size=3, unique_by=lambda item: item[0],
        ),
        # Constants big enough to push ideal terms through several wraps.
        st.integers(min_value=-3 * WRAP, max_value=3 * WRAP),
    ),
)

machine_values = st.integers(min_value=INT_MIN, max_value=INT_MAX)


@settings(deadline=None, max_examples=300)
@given(st.sampled_from(OPS), lane_lins, lane_lins,
       st.tuples(machine_values, machine_values, machine_values,
                 machine_values),
       st.booleans())
def test_widened_conjunct_is_satisfied_by_its_own_run(
    op, left_lin, right_lin, values, unsigned
):
    """The core invariant: widening never produces a conjunct its own
    concrete run falsifies — the encoding agrees with the machine on the
    very execution it anchored to, and its negation disagrees."""
    window = UNSIGNED_WINDOW if unsigned else SIGNED_WINDOW
    widener = make_widener()
    for ordinal, value in enumerate(values):
        widener.note_input(ordinal, value)
    assignment = widener.assignment

    def lane_anchor(lin):
        if lin is None:
            return fold(7, window)  # an arbitrary concrete operand
        return fold(lin.evaluate(assignment), window)

    left_anchor = lane_anchor(left_lin)
    right_anchor = lane_anchor(right_lin)
    expected = _COMPARISONS[op](left_anchor, right_anchor)
    conjunct = widener.widen_compare(
        op, left_anchor, left_lin, right_anchor, right_lin, unsigned,
        expected)
    # 32-bit wraps always divide exactly: widening must never fall back.
    assert conjunct is not None
    assert widener.dropped == 0
    assert widener.flags.all_faithful
    assert conjunct.evaluate(assignment) == bool(expected)
    assert conjunct.negate().evaluate(assignment) == (not expected)
    if isinstance(conjunct, WidenedCmp):
        assert conjunct.machine_verdict(assignment) == bool(expected)
    else:
        # Domain-precise: every lane's ideal range fits the operand
        # window, so the plain encoding is already bit-precise.
        lo, hi = UNSIGNED_WINDOW if unsigned else SIGNED_WINDOW
        for lin in (left_lin, right_lin):
            if lin is not None:
                low, high = _ideal_bounds(lin, widener.domains)
                assert lo <= low and high <= hi


@settings(deadline=None, max_examples=300)
@given(st.sampled_from(OPS), lane_lins,
       st.tuples(machine_values, machine_values, machine_values,
                 machine_values),
       st.booleans(),
       st.integers(min_value=0, max_value=3),
       st.integers(min_value=-5, max_value=5))
def test_models_inside_the_window_match_wrapped_semantics(
    op, lin, values, unsigned, var, delta
):
    """Bit-precision: *any* assignment satisfying primary ∧ guards (not
    just the anchoring run) reaches the same verdict under genuine
    wrapped evaluation — the property the substitution oracle enforces
    on real solver models."""
    window = UNSIGNED_WINDOW if unsigned else SIGNED_WINDOW
    widener = make_widener()
    for ordinal, value in enumerate(values):
        widener.note_input(ordinal, value)
    assignment = dict(widener.assignment)
    if lin is None:
        lin = LinExpr({0: 1})
    anchor = fold(lin.evaluate(assignment), window)
    expected = _COMPARISONS[op](anchor, 0)
    conjunct = widener.widen_truth_test(op, anchor, lin, unsigned,
                                        expected)
    assert conjunct is not None
    # Perturb one variable: wherever the perturbed model still satisfies
    # the whole conjunct, the machine agrees with the solver's reading.
    model = dict(assignment)
    model[var] = model.get(var, 0) + delta
    if not isinstance(conjunct, WidenedCmp):
        # Domain-precise: within the domains, the ideal reading *is* the
        # machine reading — check against a genuine mod-2³² fold.
        if all(INT_MIN <= v <= INT_MAX for v in model.values()):
            machine = fold(lin.evaluate(model), window)
            assert _COMPARISONS[op](machine, 0) == conjunct.evaluate(model)
        return
    if conjunct.evaluate(model):
        assert conjunct.machine_verdict(model)
    elif all(g.evaluate(model) for g in conjunct.guards):
        # Inside the window but primary false: the machine disagrees too.
        assert not conjunct.machine_verdict(model)


# -- end to end: overflow-sensitive directed search --------------------------

UNSIGNED_COMPARE_SOURCE = """
int f(int x, unsigned u) {
    int hits;
    hits = 0;
    if (u >= -28) {
        hits = hits + 1;
    }
    if (x + 2000000000 > 0) {
        hits = hits + 1;
    }
    if (u + 20 < 19) {
        hits = hits + 1;
    }
    return hits;
}
"""


class TestEndToEnd:
    def run_session(self, source, toplevel="f", **overrides):
        options = dict(max_iterations=120, stop_on_first_error=False,
                       handle_signals=False, seed=0)
        options.update(overrides)
        return Dart(source, toplevel, DartOptions(**options)).run()

    def test_unsigned_overflow_search_widens_and_drops_nothing(self):
        result = self.run_session(UNSIGNED_COMPARE_SOURCE)
        stats = result.stats
        assert stats.conjuncts_widened > 0
        assert stats.conjuncts_dropped_unfaithful == 0
        assert result.flags[3], "all_faithful degraded"
        # Directed, not lucky: flips were solved SAT and forced.
        assert stats.flips_sat > 0
        assert stats.runs_forced > 0
        # Every conditional — including the two that only flip through a
        # wrapped or unsigned reading — was driven down both arms, and
        # the exploration finished with every completeness flag intact.
        assert result.status == "complete"
        directions = {(pc, taken) for _, pc, taken
                      in stats.covered_branches}
        taken_pcs = {pc for pc, taken in directions if taken}
        not_taken = {pc for pc, taken in directions if not taken}
        assert taken_pcs == not_taken and len(taken_pcs) == 3

    def test_widened_funnel_reaches_the_summary(self):
        result = self.run_session(UNSIGNED_COMPARE_SOURCE)
        summary = result.stats.summary()
        assert summary["conjuncts_widened"] == \
            result.stats.conjuncts_widened > 0
        assert summary["conjuncts_dropped_unfaithful"] == 0
        assert result.to_dict()["flags"]["all_faithful"] is True
