"""Unit tests for semantic analysis: typing rules + interface discovery."""

import pytest

from repro.minic import typesys as ts
from repro.minic.errors import SemanticError
from repro.minic.parser import parse_program
from repro.minic.semantic import analyze


def check(source):
    return analyze(parse_program(source))


def check_fails(source, match=None):
    with pytest.raises(SemanticError, match=match):
        check(source)


class TestDeclarations:
    def test_undeclared_identifier(self):
        check_fails("int f(void) { return missing; }", "undeclared")

    def test_local_shadowing_in_nested_scope_is_allowed(self):
        check("int f(int x) { { int x; x = 1; } return x; }")

    def test_redefinition_in_same_scope_rejected(self):
        check_fails("int f(void) { int a; int a; return 0; }",
                    "redefinition")

    def test_duplicate_function_rejected(self):
        check_fails("int f(void) { return 0; } int f(void) { return 1; }")

    def test_prototype_then_definition_ok(self):
        info = check("int f(int x); int f(int x) { return x; }")
        assert "f" in info.functions

    def test_conflicting_prototype_rejected(self):
        check_fails("int f(int x); char f(int x) { return 0; }",
                    "conflicting")

    def test_void_variable_rejected(self):
        check_fails("void v;")

    def test_incomplete_struct_variable_rejected(self):
        check_fails("struct never_defined s;")

    def test_pointer_to_incomplete_struct_ok(self):
        check("struct fwd; int f(struct fwd *p) { return p == NULL; }")

    def test_enum_constants_usable(self):
        info = check("enum { LO = 5, HI };\nint f(void) { return HI; }")
        assert info.globals_scope.lookup("HI").value == 6

    def test_typedef_resolves(self):
        info = check("typedef unsigned int u32; u32 counter;")
        assert info.globals_scope.lookup("counter").ctype == ts.UINT

    def test_array_size_must_be_constant(self):
        check_fails("int f(int n) { int a[n]; return 0; }")

    def test_array_size_from_enum(self):
        check("enum { N = 4 }; int table[N];")

    def test_global_initializer_type_checked(self):
        check_fails('int x = "string";')


class TestExpressionTyping:
    def test_arithmetic_result_types(self):
        check("int f(int a, unsigned int b) { return a + 1; }")

    def test_pointer_arithmetic(self):
        check("int f(int *p) { return *(p + 1); }")

    def test_pointer_minus_pointer(self):
        check("int f(int *p, int *q) { return p - q; }")

    def test_pointer_plus_pointer_rejected(self):
        check_fails("int f(int *p, int *q) { return *(p + q); }")

    def test_dereference_non_pointer_rejected(self):
        check_fails("int f(int x) { return *x; }", "dereference")

    def test_dereference_void_pointer_rejected(self):
        check_fails("int f(void *p) { return *p; }")

    def test_address_of_rvalue_rejected(self):
        check_fails("int f(int x) { return *(&(x + 1)); }", "address")

    def test_assign_to_rvalue_rejected(self):
        check_fails("int f(int x) { (x + 1) = 2; return 0; }", "lvalue")

    def test_assign_int_to_pointer_rejected(self):
        check_fails("int f(int *p, int x) { p = x; return 0; }")

    def test_assign_null_literal_to_pointer_ok(self):
        check("int f(int *p) { p = 0; p = NULL; return p == NULL; }")

    def test_member_of_non_struct_rejected(self):
        check_fails("int f(int x) { return x.field; }")

    def test_arrow_on_struct_value_rejected(self):
        check_fails(
            "struct s { int v; };"
            "int f(struct s a) { return a->v; }"
        )

    def test_unknown_field_rejected(self):
        check_fails(
            "struct s { int v; };"
            "int f(struct s *p) { return p->w; }",
            "no field",
        )

    def test_array_indexing_both_orders(self):
        check("int f(int *p) { return p[0] + 0[p]; }")

    def test_call_arity_checked(self):
        check_fails(
            "int g(int a, int b) { return a; }"
            "int f(void) { return g(1); }",
            "argument",
        )

    def test_call_argument_type_checked(self):
        check_fails(
            "int g(int *p) { return 0; }"
            "int f(int x) { return g(x); }"
        )

    def test_call_undeclared_function_rejected(self):
        check_fails("int f(void) { return mystery(); }", "undeclared")

    def test_function_used_as_value_rejected(self):
        check_fails("int g(void) { return 0; } int f(void) { return g; }")

    def test_condition_must_be_scalar(self):
        check_fails(
            "struct s { int v; };"
            "int f(struct s a) { if (a) return 1; return 0; }"
        )

    def test_ternary_branch_compatibility(self):
        check("int f(int c, int *p) { return *(c ? p : NULL); }")

    def test_string_literal_decays_to_char_pointer(self):
        check('int f(void) { return strlen("abc"); }')

    def test_sizeof_annotated(self):
        info = check(
            "struct s { int a; char b; };"
            "unsigned int f(void) { return sizeof(struct s); }"
        )
        func = info.functions["f"]
        ret = func.body.statements[0]
        assert ret.value.size == 8

    def test_cast_between_scalars(self):
        check("int f(int x) { return (char) x; }")
        check("int f(int *p) { return (int) p; }")
        check("int f(int x) { char *c; c = (char *) x; return 0; }")

    def test_cast_struct_rejected(self):
        check_fails(
            "struct s { int v; };"
            "int f(struct s a) { return (int) a; }"
        )

    def test_break_outside_loop_rejected(self):
        check_fails("int f(void) { break; return 0; }")

    def test_void_return_with_value_rejected(self):
        check_fails("void f(void) { return 1; }")

    def test_missing_return_value_rejected(self):
        check_fails("int f(void) { return; }")


class TestInterfaceDiscovery:
    def test_external_function_detected(self):
        info = check(
            "int get_input(void);"
            "int f(void) { return get_input(); }"
        )
        assert "get_input" in info.interface.external_functions
        assert "f" in info.interface.defined_functions

    def test_defined_function_not_external(self):
        info = check("int helper(void); int helper(void) { return 1; }")
        assert "helper" not in info.interface.external_functions

    def test_external_variable_detected(self):
        info = check("extern int config; int f(void) { return config; }")
        assert info.interface.external_variables == {"config": ts.INT}

    def test_extern_with_later_definition_not_external(self):
        info = check("extern int x; int x = 3;")
        assert "x" not in info.interface.external_variables

    def test_builtins_are_not_external(self):
        info = check("int f(void) { return malloc(4) == NULL; }")
        assert "malloc" not in info.interface.external_functions

    def test_builtin_prototype_tolerated(self):
        info = check(
            "void *malloc(int n);"
            "int f(void) { return malloc(4) == NULL; }"
        )
        assert "malloc" not in info.interface.external_functions

    def test_builtin_redefinition_rejected(self):
        check_fails("int strlen(char *s) { return 0; }", "library")
