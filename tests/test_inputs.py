"""Unit tests for the input vector IM."""

import random

import pytest

from repro.dart.inputs import (
    InputVector,
    domain_for_kind,
    random_value,
)


class TestDomains:
    def test_int_domain(self):
        assert domain_for_kind("int") == (-(2**31), 2**31 - 1)

    def test_char_domain(self):
        assert domain_for_kind("char") == (-128, 127)

    def test_ptr_choice_is_boolean(self):
        assert domain_for_kind("ptr_choice") == (0, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            domain_for_kind("float")

    def test_random_values_in_domain(self):
        rng = random.Random(0)
        for kind in ("int", "uint", "char", "uchar", "short", "ushort",
                     "ptr_choice"):
            lo, hi = domain_for_kind(kind)
            for _ in range(50):
                assert lo <= random_value(kind, rng) <= hi


class TestInputVector:
    def test_empty(self):
        im = InputVector()
        assert len(im) == 0
        assert im.value_or_none(0, "int") is None

    def test_record_and_read_back(self):
        im = InputVector()
        im.record(0, "int", 42)
        assert im.value_or_none(0, "int") == 42

    def test_kind_mismatch_invalidates(self):
        # Slot recorded as int but consumed as a coin: value is stale.
        im = InputVector()
        im.record(0, "int", 42)
        assert im.value_or_none(0, "ptr_choice") is None

    def test_record_extends_with_gaps(self):
        im = InputVector()
        im.record(3, "char", 7)
        assert len(im) == 4
        assert im.value_or_none(3, "char") == 7

    def test_updated_merges_model(self):
        im = InputVector()
        im.record(0, "int", 1)
        im.record(1, "int", 2)
        im.record(2, "int", 3)
        merged = im.updated({1: 99})
        # IM + IM' (Fig. 5): solved slots overwritten, others preserved.
        assert merged.values() == [1, 99, 3]
        assert im.values() == [1, 2, 3]  # original untouched

    def test_updated_ignores_out_of_range_ordinals(self):
        im = InputVector()
        im.record(0, "int", 1)
        merged = im.updated({5: 7})
        assert merged.values() == [1]

    def test_domains_keyed_by_ordinal(self):
        im = InputVector()
        im.record(0, "int", 0)
        im.record(1, "ptr_choice", 1)
        assert im.domains() == {
            0: (-(2**31), 2**31 - 1),
            1: (0, 1),
        }

    def test_clone_is_independent(self):
        im = InputVector()
        im.record(0, "int", 5)
        clone = im.clone()
        clone.record(0, "int", 6)
        assert im.value_or_none(0, "int") == 5
