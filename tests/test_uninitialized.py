"""Tests for the uninitialized-read detector (the Purify-style extension)."""

import pytest

from repro import DartOptions, dart_check
from repro.interp import Machine, MachineOptions
from repro.interp.faults import UninitializedRead
from repro.interp.memory import MemoryOptions
from repro.minic import compile_program


def run(source, function="f", args=(), track=True):
    machine = Machine(
        compile_program(source),
        MachineOptions(
            memory=MemoryOptions(track_uninitialized=track)
        ),
    )
    return machine.run(function, args)


class TestDetection:
    def test_uninitialized_local_read_faults(self):
        src = "int f(void) { int x; return x; }"
        with pytest.raises(UninitializedRead):
            run(src)

    def test_initialized_local_is_fine(self):
        src = "int f(void) { int x; x = 3; return x; }"
        assert run(src) == 3

    def test_decl_initializer_counts(self):
        src = "int f(void) { int x = 9; return x; }"
        assert run(src) == 9

    def test_partial_struct_init_detected(self):
        src = """
        struct pair { int a; int b; };
        int f(void) { struct pair p; p.a = 1; return p.b; }
        """
        with pytest.raises(UninitializedRead):
            run(src)

    def test_struct_copy_propagates_silently(self):
        # Copying a partially initialized struct is fine (like C);
        # only the later scalar read of the bad field faults.
        src = """
        struct pair { int a; int b; };
        int f(void) {
          struct pair p; struct pair q;
          p.a = 1;
          q = p;
          return q.a;
        }
        """
        assert run(src) == 1

    def test_malloc_memory_uninitialized(self):
        src = """
        int f(void) {
          int *p;
          p = (int *) malloc(8);
          return p[1];
        }
        """
        with pytest.raises(UninitializedRead):
            run(src)

    def test_calloc_style_memset_initializes(self):
        src = """
        int f(void) {
          int *p;
          p = (int *) malloc(8);
          memset(p, 0, 8);
          return p[1];
        }
        """
        assert run(src) == 0

    def test_globals_are_zero_initialized(self):
        src = "int g; int f(void) { return g; }"
        assert run(src) == 0

    def test_array_element_tracking(self):
        src = """
        int f(void) {
          int a[4];
          a[0] = 1; a[2] = 3;
          return a[1];
        }
        """
        with pytest.raises(UninitializedRead):
            run(src)

    def test_disabled_by_default(self):
        src = "int f(void) { int x; return x; }"
        assert run(src, track=False) == 0  # zero-filled, no check


class TestDartIntegration:
    def test_dart_reports_uninitialized_reads_as_bugs(self):
        # The bug only fires down a branch: DART steers into it.
        src = """
        int f(int mode) {
          int result;
          if (mode == 4242) {
            return result;   /* forgot to set it on this path */
          }
          result = mode;
          return result;
        }
        """
        options = DartOptions(max_iterations=100, seed=0,
                              track_uninitialized=True)
        result = dart_check(src, "f", options)
        assert result.found_error
        assert result.first_error().kind == "uninitialized read"
        assert result.first_error().inputs[0] == 4242

    def test_driver_inputs_are_always_initialized(self):
        src = """
        struct box { int v; };
        int f(struct box *b, int n) {
          if (b == NULL) return -1;
          return b->v + n;
        }
        """
        options = DartOptions(max_iterations=100, seed=0,
                              track_uninitialized=True)
        result = dart_check(src, "f", options)
        # random_init writes every input cell: no false positives.
        assert not result.found_error
        assert result.complete
