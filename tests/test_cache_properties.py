"""Property tests for the solver-result cache's canonical keys.

The cache (repro.solver.cache) identifies a query by the *set* of
``CmpExpr.key()``s plus the domains of the variables they mention.  For
that identity to be sound it must be insensitive to every representation
accident — the order conjuncts were recorded in, the insertion order of
LinExpr coefficient dicts, duplicated conjuncts — while never conflating
two genuinely different constraint sets in a way that would let a cached
answer contradict the query it is returned for.  Hypothesis drives all
three obligations here with randomly built constraint systems.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.solver import Solver, SolverResultCache
from repro.solver.cache import EXACT, MODEL_REUSE, UNSAT_SUPERSET
from repro.symbolic.expr import EQ, GE, GT, LE, LT, NE, CmpExpr, LinExpr

OPS = [EQ, NE, LT, LE, GT, GE]

coeff_items = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.integers(min_value=-8, max_value=8)),
    min_size=1, max_size=4,
    unique_by=lambda item: item[0],
)

lin_exprs = st.builds(
    lambda items, const: LinExpr(dict(items), const),
    coeff_items,
    st.integers(min_value=-20, max_value=20),
)

cmp_exprs = st.builds(
    lambda op, lin: CmpExpr(op, lin),
    st.sampled_from(OPS),
    lin_exprs,
)

constraint_lists = st.lists(cmp_exprs, min_size=1, max_size=5)

domain_maps = st.dictionaries(
    st.integers(min_value=0, max_value=5),
    st.tuples(st.integers(min_value=-10, max_value=0),
              st.integers(min_value=0, max_value=10)),
    max_size=6,
)


@settings(deadline=None, max_examples=200)
@given(constraint_lists, domain_maps, st.data())
def test_query_key_invariant_under_conjunct_order(constraints, domains, data):
    shuffled = data.draw(st.permutations(constraints))
    assert SolverResultCache.query_key(constraints, domains) == \
        SolverResultCache.query_key(shuffled, domains)


@settings(deadline=None, max_examples=200)
@given(constraint_lists, domain_maps)
def test_query_key_ignores_duplicate_conjuncts(constraints, domains):
    doubled = constraints + list(reversed(constraints))
    assert SolverResultCache.query_key(constraints, domains) == \
        SolverResultCache.query_key(doubled, domains)


@settings(deadline=None, max_examples=200)
@given(st.sampled_from(OPS), coeff_items,
       st.integers(min_value=-20, max_value=20))
def test_lin_key_invariant_under_term_insertion_order(op, items, const):
    forward = CmpExpr(op, LinExpr(dict(items), const))
    backward = CmpExpr(op, LinExpr(dict(reversed(items)), const))
    assert forward.key() == backward.key()
    assert SolverResultCache.query_key([forward], {}) == \
        SolverResultCache.query_key([backward], {})


@settings(deadline=None, max_examples=200)
@given(lin_exprs, domain_maps)
def test_strict_inequalities_normalize_to_nonstrict_keys(lin, domains):
    """Over the integers ``lin < 0`` iff ``lin + 1 <= 0`` (and ``lin > 0``
    iff ``lin - 1 >= 0``): the two spellings of one half-space must build
    the same query key, so they share exact-tier cache entries."""
    assert SolverResultCache.query_key([CmpExpr(LT, lin)], domains) == \
        SolverResultCache.query_key([CmpExpr(LE, lin.add_const(1))], domains)
    assert SolverResultCache.query_key([CmpExpr(GT, lin)], domains) == \
        SolverResultCache.query_key([CmpExpr(GE, lin.add_const(-1))], domains)
    # ...and the normalization never conflates the half-space with its
    # complement or its boundary.
    assert SolverResultCache.query_key([CmpExpr(LT, lin)], domains) != \
        SolverResultCache.query_key([CmpExpr(GE, lin)], domains)
    assert SolverResultCache.query_key([CmpExpr(LT, lin)], domains) != \
        SolverResultCache.query_key([CmpExpr(LE, lin)], domains)


@settings(deadline=None, max_examples=100)
@given(lin_exprs, domain_maps)
def test_exact_hit_across_strict_and_nonstrict_spellings(lin, domains):
    """Priming the cache with ``lin < 0`` answers ``lin + 1 <= 0`` (and
    the GT/GE pair) from the exact tier without a second solver call."""
    cache = SolverResultCache()
    solver = Solver(seed=0)
    for strict, nonstrict in (
        (CmpExpr(LT, lin), CmpExpr(LE, lin.add_const(1))),
        (CmpExpr(GT, lin), CmpExpr(GE, lin.add_const(-1))),
    ):
        stored = solver.solve([strict], domains)
        cache.store([strict], domains, stored)
        if stored.status not in ("sat", "unsat"):
            continue
        hit = cache.lookup([nonstrict], domains)
        assert hit is not None
        result, tier = hit
        assert tier == EXACT
        assert result.status == stored.status


@settings(deadline=None, max_examples=150)
@given(constraint_lists, constraint_lists, domain_maps)
def test_distinct_key_sets_never_collide_unsoundly(first, second, domains):
    """A cache primed with ``first`` must answer ``second`` soundly.

    Whatever tier answers: an exact hit requires equal canonical keys, an
    UNSAT-superset shortcut requires the refuted set to be a subset of the
    query, and a reused model must actually satisfy the query — so a
    cached verdict can never contradict a fresh solver call.
    """
    cache = SolverResultCache()
    solver = Solver(seed=0)
    cache.store(first, domains, solver.solve(first, domains))
    hit = cache.lookup(second, domains)
    if hit is None:
        return
    result, tier = hit
    # The cache's identity is the *canonical* key — strict inequalities
    # are normalized to their non-strict spelling — so soundness is
    # judged on canonical keys, not raw ``CmpExpr.key()``s.
    canon = SolverResultCache.canonical_cmp_key
    first_keys = {canon(c) for c in first}
    second_keys = {canon(c) for c in second}
    if tier == EXACT:
        assert first_keys == second_keys
        assert SolverResultCache.query_key(first, domains) == \
            SolverResultCache.query_key(second, domains)
    elif tier == UNSAT_SUPERSET:
        assert result.status == "unsat"
        assert first_keys <= second_keys
    else:
        assert tier == MODEL_REUSE
        assert result.status == "sat"
        model = result.model
        for constraint in second:
            assert constraint.evaluate(model)
            for var in constraint.variables():
                assert var in model


@settings(deadline=None, max_examples=100)
@given(constraint_lists, domain_maps, st.data())
def test_exact_hit_returns_stored_verdict_for_any_order(constraints, domains,
                                                        data):
    cache = SolverResultCache()
    solver = Solver(seed=0)
    stored = solver.solve(constraints, domains)
    cache.store(constraints, domains, stored)
    if stored.status not in ("sat", "unsat"):
        assert cache.lookup(constraints, domains) is None
        return
    shuffled = data.draw(st.permutations(constraints))
    hit = cache.lookup(shuffled, domains)
    assert hit is not None
    result, tier = hit
    assert tier == EXACT
    assert result.status == stored.status
