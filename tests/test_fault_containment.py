"""The fault boundary: one bad run costs one iteration, not the session.

The paper's process-per-run architecture gets crash containment for free —
a dying execution loses at most one run and the search resumes from the
state file.  These tests pin the in-process equivalent: internal failures
(injected RecursionError / MemoryError / harness bugs), watchdog run
timeouts, and solver budget exhaustion are contained, classified, and the
directed search continues to a normal verdict.
"""

import time

import pytest

from repro import DartOptions, dart_check
from repro.dart.instrument import DirectedHooks
from repro.dart.report import (
    INTERNAL_ERROR,
    RESOURCE_EXHAUSTED,
    RUN_TIMEOUT,
)
from repro.dart.runner import Dart
from repro.dart.solve import solve_with_retry
from repro.programs import samples
from repro.solver import Solver
from repro.solver.core import SolverResult


def inject_once(monkeypatch, exc):
    """Make the first executed branch of the session raise ``exc``."""
    state = {"armed": True}
    original = DirectedHooks.on_branch

    def flaky(self, taken, constraint, location):
        if state["armed"]:
            state["armed"] = False
            raise exc
        return original(self, taken, constraint, location)

    monkeypatch.setattr(DirectedHooks, "on_branch", flaky)
    return state


class TestFaultBoundary:
    def test_recursion_error_is_contained_and_search_continues(
        self, monkeypatch
    ):
        inject_once(monkeypatch, RecursionError("injected stack blowout"))
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=0)
        # The session survived the internal failure and still found the
        # directed bug on a later run.
        assert result.found_error
        assert result.status == "bug_found"
        assert len(result.quarantined) == 1
        record = result.quarantined[0]
        assert record.classification == RESOURCE_EXHAUSTED
        assert record.iteration == 1
        assert "RecursionError" in record.detail

    def test_memory_error_is_resource_exhausted(self, monkeypatch):
        inject_once(monkeypatch, MemoryError("injected"))
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=0)
        assert result.found_error
        assert result.quarantined[0].classification == RESOURCE_EXHAUSTED

    def test_harness_bug_is_internal_error(self, monkeypatch):
        inject_once(monkeypatch, ValueError("injected machine-layer bug"))
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=0)
        assert result.found_error
        record = result.quarantined[0]
        assert record.classification == INTERNAL_ERROR
        assert "ValueError" in record.detail

    def test_quarantine_clears_completeness_claim(self, monkeypatch):
        # Z_SOURCE normally terminates "complete"; with one quarantined
        # run the session must not claim full path coverage (Theorem 1(b)
        # honesty, mirroring the forcing_ok degradation).
        inject_once(monkeypatch, ValueError("injected"))
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=30, seed=0)
        assert len(result.quarantined) == 1
        assert result.status != "complete"
        assert result.flags[0] is False  # all_linear cleared

    def test_quarantine_records_the_input_vector(self, monkeypatch):
        inject_once(monkeypatch, ValueError("injected"))
        result = dart_check(samples.H_SOURCE, "h",
                            max_iterations=50, seed=0)
        record = result.quarantined[0]
        assert len(record.inputs) == len(record.kinds)
        assert all(kind == "int" for kind in record.kinds)

    def test_generational_engine_uses_the_same_boundary(self, monkeypatch):
        inject_once(monkeypatch, RecursionError("injected"))
        result = dart_check(samples.H_SOURCE, "h", strategy="bfs",
                            max_iterations=50, seed=0)
        assert result.found_error
        assert len(result.quarantined) == 1

    def test_keyboard_interrupt_is_not_swallowed(self, monkeypatch):
        inject_once(monkeypatch, KeyboardInterrupt())
        with pytest.raises(KeyboardInterrupt):
            dart_check(samples.H_SOURCE, "h", max_iterations=50, seed=0)


SLOW_BRANCH_SOURCE = """
int f(int x) {
  int i;
  i = 0;
  if (x == 7) {
    while (i < 100000000)
      i = i + 1;
  }
  if (x == 3)
    abort();
  return i;
}
"""

ALWAYS_SLOW_SOURCE = """
int f(int x) {
  int i;
  i = 0;
  while (i < 2000000000)
    i = i + 1;
  return i;
}
"""


class TestWatchdog:
    def test_pathological_run_is_quarantined_and_search_continues(self):
        # bfs pops the x==7 child first: that run trips the per-run
        # watchdog, is quarantined, and the search still reaches the
        # x==3 abort afterwards.
        result = dart_check(
            SLOW_BRANCH_SOURCE, "f", strategy="bfs",
            max_iterations=20, seed=0,
            run_time_limit=0.2, max_steps=50_000_000,
        )
        assert result.found_error
        timeouts = [r for r in result.quarantined
                    if r.classification == RUN_TIMEOUT]
        assert timeouts, "the slow run was not quarantined"
        assert timeouts[0].inputs[0] == 7

    def test_session_time_limit_enforced_mid_run(self):
        # A single endless run can no longer blow past time_limit: the
        # session deadline is threaded into the machine watchdog.
        started = time.perf_counter()
        result = dart_check(
            ALWAYS_SLOW_SOURCE, "f",
            time_limit=0.5, max_steps=1_000_000_000, max_iterations=100,
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # budget + one watchdog interval, not ~minutes
        assert result.status == "exhausted"
        assert any(r.classification == RUN_TIMEOUT
                   for r in result.quarantined)

    def test_fast_sessions_unaffected_by_watchdog_options(self):
        plain = dart_check(samples.H_SOURCE, "h",
                           max_iterations=50, seed=0)
        guarded = dart_check(samples.H_SOURCE, "h",
                             max_iterations=50, seed=0,
                             run_time_limit=30.0)
        assert guarded.status == plain.status
        assert guarded.iterations == plain.iterations
        assert guarded.first_error().inputs == plain.first_error().inputs


class TestSolverResilience:
    def test_retry_escalates_budget_once(self):
        calls = []

        class StubSolver:
            node_budget = 100

            def solve(self, constraints, domains=None, node_budget=None):
                calls.append(node_budget)
                if node_budget is None:
                    return SolverResult("unknown")
                return SolverResult("sat", model={})

        from repro.dart.report import RunStats
        stats = RunStats()
        result = solve_with_retry(StubSolver(), [], {}, stats, escalation=4)
        assert result.status == "sat"
        assert calls == [None, 400]
        assert stats.solver_retries == 1
        assert stats.solver_escalations == 1
        assert stats.solver_calls == 1  # one *logical* call
        assert stats.solver_sat == 1 and stats.solver_unknown == 0

    def test_no_retry_when_disabled(self):
        class StubSolver:
            node_budget = 100

            def solve(self, constraints, domains=None, node_budget=None):
                return SolverResult("unknown")

        from repro.dart.report import RunStats
        stats = RunStats()
        result = solve_with_retry(StubSolver(), [], {}, stats, escalation=1)
        assert result.status == "unknown"
        assert stats.solver_retries == 0
        assert stats.solver_unknown == 1

    def test_escalated_retry_rescues_the_session(self, monkeypatch):
        # First attempts report budget exhaustion; only the escalated
        # retry really solves.  With escalation the bug is found, without
        # it the session degrades to (hopeless) random testing.
        original = Solver.solve

        def budget_starved(self, constraints, domains=None,
                           node_budget=None):
            if node_budget is None:
                return SolverResult("unknown")
            return original(self, constraints, domains)

        monkeypatch.setattr(Solver, "solve", budget_starved)
        rescued = dart_check(samples.H_SOURCE, "h",
                             max_iterations=40, seed=0,
                             solver_escalation=4)
        assert rescued.found_error
        assert rescued.stats.solver_retries >= 1
        assert rescued.stats.solver_escalations >= 1
        degraded = dart_check(samples.H_SOURCE, "h",
                              max_iterations=40, seed=0,
                              solver_escalation=1)
        assert not degraded.found_error

    def test_solver_call_accounting_invariant_holds(self, monkeypatch):
        original = Solver.solve

        def budget_starved(self, constraints, domains=None,
                           node_budget=None):
            if node_budget is None:
                return SolverResult("unknown")
            return original(self, constraints, domains)

        monkeypatch.setattr(Solver, "solve", budget_starved)
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=40, seed=0,
                            solver_escalation=4)
        stats = result.stats
        assert stats.solver_calls == (
            stats.solver_sat + stats.solver_unsat + stats.solver_unknown
        )


class TestReplayKinds:
    def test_error_report_stores_input_kinds(self):
        dart = Dart(samples.STRUCT_CAST_SOURCE, "bar",
                    DartOptions(max_iterations=100, seed=0))
        result = dart.run()
        assert result.found_error
        report = result.first_error()
        assert len(report.kinds) == len(report.inputs)
        # The driver flips a NULL-or-fresh coin for the pointer argument.
        assert "ptr_choice" in report.kinds

    def test_replay_accepts_an_error_report(self):
        dart = Dart(samples.STRUCT_CAST_SOURCE, "bar",
                    DartOptions(max_iterations=100, seed=0))
        result = dart.run()
        report = result.first_error()
        fault = dart.replay(report)
        assert fault is not None
        assert fault.kind == report.kind

    def test_replay_with_explicit_kinds(self):
        dart = Dart(samples.STRUCT_CAST_SOURCE, "bar",
                    DartOptions(max_iterations=100, seed=0))
        result = dart.run()
        report = result.first_error()
        fault = dart.replay(report.inputs, kinds=report.kinds)
        assert fault is not None and fault.kind == report.kind

    def test_plain_value_list_still_replays(self):
        dart = Dart(samples.H_SOURCE, "h",
                    DartOptions(max_iterations=50, seed=0))
        result = dart.run()
        fault = dart.replay(result.first_error().inputs)
        assert fault is not None
