"""Tests for the IR disassembler."""

from repro.dart.driver import build_test_program
from repro.minic import compile_program
from repro.minic.disasm import disassemble, disassemble_function, format_expr
from repro.minic.parser import parse_program
from repro.minic.semantic import analyze


def expr_of(source_expr):
    program = parse_program(
        "int f(int x, int y) { return " + source_expr + "; }"
    )
    analyze(program)
    return program.declarations[0].body.statements[0].value


class TestExprFormatting:
    def test_literals_and_idents(self):
        assert format_expr(expr_of("42")) == "42"
        assert format_expr(expr_of("x")) == "x"

    def test_binary(self):
        assert format_expr(expr_of("x + y * 2")) == "(x + (y * 2))"

    def test_unary_and_postfix(self):
        assert format_expr(expr_of("-x")) == "-x"
        assert format_expr(expr_of("x++")) == "x++"

    def test_call(self):
        text = format_expr(expr_of("f(x, 1)"))
        assert text == "f(x, 1)"

    def test_assignment(self):
        assert format_expr(expr_of("x = y")) == "x = y"


class TestDisassembly:
    def test_branches_show_targets(self):
        module = compile_program(
            "int f(int x) { if (x > 0) return 1; return 0; }"
        )
        text = disassemble_function(module.functions["f"])
        assert "branch (x > 0) ->" in text
        assert "ret 1" in text and "ret 0" in text

    def test_abort_annotated(self):
        module = compile_program("int f(int x) { assert(x); return x; }")
        text = disassemble_function(module.functions["f"])
        assert "abort" in text and "assertion violation" in text

    def test_frame_size_reported(self):
        module = compile_program("int f(void) { int a[4]; a[0] = 1;"
                                 " return a[0]; }")
        text = disassemble_function(module.functions["f"])
        assert "frame" in text

    def test_module_listing_sorted_and_complete(self):
        module = compile_program(
            "int b(void) { return 2; } int a(void) { return 1; }"
        )
        text = disassemble(module)
        assert text.index("int a(") < text.index("int b(")

    def test_driver_functions_hidden_by_default(self):
        module = build_test_program("int f(int x) { return x; }", "f")
        assert "__dart_init" not in disassemble(module)
        assert "__dart_init" in disassemble(module, include_driver=True)

    def test_listing_covers_every_instruction(self):
        module = compile_program("""
        int f(int x) {
          int i; int s;
          s = 0;
          for (i = 0; i < x; i++) s += i;
          return s;
        }
        """)
        func = module.functions["f"]
        lines = disassemble_function(func).splitlines()
        assert len(lines) == len(func.instrs) + 1  # header + one per instr
