"""Constraint independence slicing: units and differential soundness."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import DartOptions, dart_check
from repro.dart.slicing import ConstraintSlicer, UnionFind
from repro.programs import samples
from repro.symbolic.expr import CmpExpr, EQ, GT, LinExpr


def cmp(op, coeffs, const=0):
    return CmpExpr(op, LinExpr(coeffs, const))


class TestUnionFind:
    def test_singletons_are_their_own_roots(self):
        uf = UnionFind()
        assert uf.find(1) == 1
        assert uf.find(2) == 2

    def test_union_merges_roots(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.find(1) == uf.find(3)
        assert uf.find(1) != uf.find(4)

    def test_union_is_idempotent(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(1, 2)
        uf.union(2, 1)
        assert uf.find(1) == uf.find(2)

    def test_transitive_closure_over_chains(self):
        uf = UnionFind()
        for i in range(10):
            uf.union(i, i + 1)
        roots = {uf.find(i) for i in range(11)}
        assert len(roots) == 1


class TestConstraintSlicer:
    def test_independent_conjuncts_are_dropped(self):
        # x0 > 0 and x1 > 0 are independent; flipping a conjunct on x1
        # must not drag x0's group into the query.
        constraints = [cmp(GT, {0: 1}), cmp(GT, {1: 1})]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {1: 1}, -5)
        assert slicer.slice(2, negated) == [constraints[1], negated]

    def test_shared_variable_keeps_the_conjunct(self):
        constraints = [cmp(GT, {0: 1}), cmp(GT, {0: 1, 1: 1})]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {1: 1})
        # x1 links to x0 through the second conjunct, so both stay.
        assert slicer.slice(2, negated) == constraints + [negated]

    def test_transitive_sharing_chains_groups(self):
        # (x0,x1) (x1,x2) (x3): negating on x0 pulls the whole x0-x1-x2
        # chain but not x3.
        constraints = [
            cmp(GT, {0: 1, 1: 1}),
            cmp(GT, {1: 1, 2: 1}),
            cmp(GT, {3: 1}),
        ]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {0: 1})
        assert slicer.slice(3, negated) == constraints[:2] + [negated]

    def test_prefix_bound_respected(self):
        constraints = [cmp(GT, {0: 1}), cmp(GT, {0: 1}, -10)]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {0: 1})
        # Only constraints[:1] may enter the query for j=1.
        assert slicer.slice(1, negated) == [constraints[0], negated]

    def test_none_entries_never_join_groups(self):
        # A concrete-fallback branch (None) separates nothing.
        constraints = [cmp(GT, {0: 1}), None, cmp(GT, {0: 1}, -3)]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {0: 1})
        query = slicer.slice(3, negated)
        assert query == [constraints[0], constraints[2], negated]

    def test_negated_conjunct_can_bridge_groups(self):
        # The negated conjunct mentions x0 AND x1: both groups in scope.
        constraints = [cmp(GT, {0: 1}), cmp(GT, {1: 1})]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {0: 1, 1: 1})
        assert slicer.slice(2, negated) == constraints + [negated]

    def test_descending_candidates_rebuild_correctly(self):
        # dfs walks candidate indices deepest-first; the slicer must give
        # the same answers as a fresh instance at every prefix length.
        constraints = [
            cmp(GT, {0: 1}),
            cmp(GT, {1: 1}),
            cmp(GT, {0: 1, 1: 1}),
        ]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {1: 1})
        for j in (3, 2, 1, 0):
            fresh = ConstraintSlicer(constraints)
            assert slicer.slice(j, negated) == fresh.slice(j, negated), j

    def test_groups_merge_as_the_prefix_grows(self):
        # At j=2 the groups {x0} and {x1} are separate; the j=3 conjunct
        # bridges them, so the longer prefix keeps everything.
        constraints = [
            cmp(GT, {0: 1}),
            cmp(GT, {1: 1}),
            cmp(GT, {0: 1, 1: 1}),
        ]
        slicer = ConstraintSlicer(constraints)
        negated = cmp(EQ, {0: 1})
        assert slicer.slice(2, negated) == [constraints[0], negated]
        assert slicer.slice(3, negated) == constraints + [negated]


def _verdict(source, toplevel, seed, slicing, cache, **overrides):
    options = DartOptions(
        max_iterations=overrides.pop("max_iterations", 200), seed=seed,
        constraint_slicing=slicing, solver_cache=cache,
        stop_on_first_error=False, **overrides,
    )
    result = dart_check(source, toplevel, options)
    return (
        result.status,
        sorted({(e.kind, str(e.location)) for e in result.errors}),
    )


class TestDifferentialSlicing:
    """Slicing and caching may change models, never verdicts.

    For programs the directed search covers *completely* (``all_linear``
    holds) Theorem 1(b) guarantees every feasible path is visited, so the
    deduplicated error set is model-independent and must be identical
    with and without the optimisations.  A non-linear program (foobar)
    falls back to concrete values, so *which* errors an incomplete search
    stumbles on legitimately depends on the models the solver picks —
    there only the verdict (bug found / not) is invariant.
    """

    COMPLETE_PROGRAMS = [
        (samples.H_SOURCE, "h"),
        (samples.Z_SOURCE, "f"),
        (samples.FILTER_SOURCE, "entry"),
        (samples.STRUCT_CAST_SOURCE, "bar"),
    ]

    def test_same_verdicts_with_and_without_slicing(self):
        for source, toplevel in self.COMPLETE_PROGRAMS:
            baseline = _verdict(source, toplevel, 0, False, False)
            sliced = _verdict(source, toplevel, 0, True, False)
            assert baseline == sliced, toplevel

    def test_same_verdicts_with_slicing_and_cache(self):
        for source, toplevel in self.COMPLETE_PROGRAMS:
            baseline = _verdict(source, toplevel, 0, False, False)
            optimised = _verdict(source, toplevel, 0, True, True)
            assert baseline == optimised, toplevel

    def test_nonlinear_program_keeps_its_verdict(self):
        baseline = _verdict(samples.FOOBAR_SOURCE, "foobar", 0,
                            False, False)
        optimised = _verdict(samples.FOOBAR_SOURCE, "foobar", 0,
                             True, True)
        assert baseline[0] == optimised[0] == "bug_found"

    def test_same_verdicts_across_strategies(self):
        for strategy in ("dfs", "bfs", "random"):
            baseline = _verdict(samples.FILTER_SOURCE, "entry", 3,
                                False, False, strategy=strategy,
                                max_iterations=500)
            optimised = _verdict(samples.FILTER_SOURCE, "entry", 3,
                                 True, True, strategy=strategy,
                                 max_iterations=500)
            assert baseline == optimised, strategy

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_verdicts_invariant_under_optimisation(self, seed):
        for source, toplevel in (
            (samples.H_SOURCE, "h"),
            (samples.FILTER_SOURCE, "entry"),
        ):
            baseline = _verdict(source, toplevel, seed, False, False,
                                max_iterations=500)
            optimised = _verdict(source, toplevel, seed, True, True,
                                 max_iterations=500)
            assert baseline == optimised, (toplevel, seed)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_nonlinear_verdict_invariant(self, seed):
        baseline = _verdict(samples.FOOBAR_SOURCE, "foobar", seed,
                            False, False, max_iterations=300)
        optimised = _verdict(samples.FOOBAR_SOURCE, "foobar", seed,
                             True, True, max_iterations=300)
        assert baseline[0] == optimised[0], seed
