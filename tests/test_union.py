"""Tests for union types: layout, aliasing, symbolic interaction."""

import pytest

from repro import dart_check
from repro.interp import Machine
from repro.minic import compile_program
from repro.minic.errors import SemanticError


def run(source, function="f", args=()):
    return Machine(compile_program(source)).run(function, args)


class TestLayout:
    def test_size_is_widest_member(self):
        src = """
        union v { char c; short s; int i; };
        int f(void) { return sizeof(union v); }
        """
        assert run(src) == 4

    def test_alignment_padding(self):
        src = """
        union v { char c[5]; int i; };
        int f(void) { return sizeof(union v); }
        """
        assert run(src) == 8  # 5 bytes rounded to int alignment

    def test_members_share_storage(self):
        src = """
        union word { int i; char bytes[4]; };
        int f(void) {
          union word w;
          w.i = 0x01020304;
          return w.bytes[0] + w.bytes[3] * 100;
        }
        """
        assert run(src) == 4 + 1 * 100  # little endian

    def test_write_through_narrow_member(self):
        src = """
        union word { int i; char c; };
        int f(void) {
          union word w;
          w.i = 0;
          w.c = 7;
          return w.i;
        }
        """
        assert run(src) == 7

    def test_union_pointer_arrow(self):
        src = """
        union box { int i; char c; };
        int f(void) {
          union box b;
          union box *p;
          p = &b;
          p->i = 65;
          return p->c;
        }
        """
        assert run(src) == ord("A")

    def test_union_inside_struct(self):
        src = """
        union payload { int number; char tag; };
        struct message { int kind; union payload data; };
        int f(void) {
          struct message m;
          m.kind = 1;
          m.data.number = 42;
          return m.kind + m.data.number;
        }
        """
        assert run(src) == 43


class TestStaticChecks:
    def test_tag_kind_mismatch_rejected(self):
        with pytest.raises(SemanticError, match="both struct and union"):
            compile_program(
                "struct t { int a; };"
                "int f(union t *p) { return 0; }"
            )

    def test_union_redefinition_rejected(self):
        with pytest.raises(SemanticError, match="redefinition"):
            compile_program(
                "union u { int a; }; union u { int b; };"
            )

    def test_unknown_member_rejected(self):
        with pytest.raises(SemanticError, match="no field"):
            compile_program(
                "union u { int a; };"
                "int f(void) { union u x; x.a = 1; return x.zzz; }"
            )


class TestSymbolicInteraction:
    def test_union_member_overwrite_invalidates_symbolic_value(self):
        # Writing the char member partially clobbers the symbolic int:
        # the branch constraint must fall back to concrete, never produce
        # a wrong prediction.
        src = """
        union word { int i; char c; };
        int f(int x) {
          union word w;
          w.i = x;
          w.c = 1;
          if (w.i == 1) abort();
          return w.i;
        }
        """
        result = dart_check(src, "f", max_iterations=100, seed=0)
        # x == 1 makes w.i == 1 after the overwrite only if the upper
        # bytes are zero; DART may or may not find it by luck, but must
        # never misreport, and the invariant must hold.
        all_linear, all_locs, forcing = result.flags[:3]
        if all_linear and all_locs:
            assert forcing

    def test_dart_solves_through_whole_union_member(self):
        src = """
        union value { int number; };
        int f(int x) {
          union value v;
          v.number = x;
          if (v.number == 987654) abort();
          return 0;
        }
        """
        result = dart_check(src, "f", max_iterations=50, seed=0)
        assert result.found_error
        assert result.first_error().inputs == [987654]

    def test_driver_initializes_union_inputs(self):
        src = """
        union data { int i; char c; };
        int f(union data *d) {
          if (d == NULL) return -1;
          if (d->i == 31337) abort();
          return d->i;
        }
        """
        result = dart_check(src, "f", max_iterations=100, seed=0)
        assert result.found_error
