
/* initially, */
int is_room_hot = 0;    /* room is not hot */
int is_door_closed = 0; /* and door is open */
int ac = 0;             /* so, ac is off */

void ac_controller(int message) {
  if (message == 0) is_room_hot = 1;
  if (message == 1) is_room_hot = 0;
  if (message == 2) {
    is_door_closed = 0;
    ac = 0;
  }
  if (message == 3) {
    is_door_closed = 1;
    if (is_room_hot) ac = 1;
  }
  if (is_room_hot && is_door_closed && !ac)
    abort(); /* check correctness */
}
