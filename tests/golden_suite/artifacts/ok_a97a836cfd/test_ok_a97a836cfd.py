"""Replay wrapper for suite artifact ``ok_a97a836cfd`` (generated).

Re-executes the recorded input vector through the forcing-replay
machinery with search disabled and asserts the recorded verdict, branch
path and covered-branch set are reproduced bit-for-bit.  Standalone:
runs under plain ``pytest`` with only ``PYTHONPATH=src``.
"""

import os

from repro.suite.replay import check_artifact

_HERE = os.path.dirname(os.path.abspath(__file__))


def test_replay_ok_a97a836cfd():
    check_artifact(_HERE)
