"""End-to-end reproduction of the Section 4.1 AC-controller experiment."""

from repro import dart_check, random_check
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
    DEPTH2_ERROR_SEQUENCE,
)


class TestDepthOne:
    def test_no_error_and_full_coverage(self):
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=1, max_iterations=100, seed=0)
        assert result.status == "complete"
        assert not result.found_error

    def test_handful_of_iterations(self):
        # The paper reports 6 iterations; exact counts depend on branch
        # accounting, but it must stay a single-digit number of runs.
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=1, max_iterations=100, seed=0)
        assert result.iterations <= 10

    def test_meaningful_messages_enumerated(self):
        # Messages 0..3 each drive a distinct path, plus the "other" class.
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=1, max_iterations=100, seed=0)
        assert len(result.stats.distinct_paths) == 5


class TestDepthTwo:
    def test_assertion_violation_found(self):
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=2, max_iterations=1000, seed=0)
        assert result.status == "bug_found"

    def test_error_sequence_is_3_then_0(self):
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=2, max_iterations=1000, seed=0)
        assert tuple(result.first_error().inputs) == DEPTH2_ERROR_SEQUENCE

    def test_found_quickly_for_several_seeds(self):
        for seed in range(5):
            result = dart_check(AC_CONTROLLER_SOURCE,
                                AC_CONTROLLER_TOPLEVEL,
                                depth=2, max_iterations=1000, seed=seed)
            assert result.status == "bug_found", seed
            assert result.iterations <= 60

    def test_random_search_never_finds_it(self):
        # One in 2**64 per attempt; thousands of runs find nothing.
        result = random_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                              depth=2, max_iterations=3000, seed=0)
        assert not result.found_error


class TestStatePersistsWithinRun:
    def test_depth_semantics_carry_globals_across_calls(self):
        # The depth-2 bug depends on globals persisting between the two
        # toplevel invocations of one execution: message 3 closes the
        # door (cold room), message 0 then heats the room.
        result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                            depth=2, max_iterations=1000, seed=1)
        assert result.found_error
