"""Differential tests of the compiled execution engine.

PR 7 lowers each IR function into specialized step closures and runs
symbolic tracking only for tainted values.  The engine's contract is
*observational identity*: for any program and any input vector, the
compiled engine and the tree-walking interpreter must produce the same
branch events (order, direction, constraint presence), the same final
memory image, the same fault/return value/output, and — across a whole
directed campaign — the same verdict, error set and branch coverage.

Three layers of evidence:

* a Hypothesis property over generated mini-C programs (taint off via
  concrete replay hooks, taint on via ``DirectedHooks``);
* whole-campaign ablation: ``compiled_execution=False`` sessions on the
  benchmark programs and on every checked-in fuzz-corpus repro must
  reproduce the compiled sessions' results key for key;
* unit checks on the lowering cache and its failure modes.
"""

import glob
import os
import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dart.config import DartOptions
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks
from repro.dart.runner import Dart
from repro.interp.compile import CompiledProgram
from repro.interp.faults import ExecutionFault, InterpreterError
from repro.interp.machine import Machine, MachineOptions
from repro.minic import compile_program
from repro.symbolic.flags import CompletenessFlags
from repro.testgen import GeneratorOptions, generate_program, load_repro

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

MACHINE_OPTIONS = MachineOptions(max_steps=300_000)

DART_OPTIONS = dict(max_iterations=120, stop_on_first_error=False,
                    handle_signals=False, seed=0)


class _LoggingFixedHooks:
    """Concrete replay of a recorded vector; logs every branch event."""

    def __init__(self, im):
        self.im = im
        self.branch_log = []
        self._next_ordinal = 0

    def acquire_input(self, kind):
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        value = self.im.value_or_none(ordinal, kind)
        return (value if value is not None else 0), None

    def on_branch(self, taken, constraint, location):
        self.branch_log.append((taken, constraint is not None,
                                str(location)))


class _LoggingDirectedHooks(DirectedHooks):
    """Full symbolic instrumentation, plus the same branch log."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.branch_log = []

    def on_branch(self, taken, constraint, location):
        self.branch_log.append((taken, constraint is not None,
                                str(location)))
        super().on_branch(taken, constraint, location)


def _run(module, hooks, compiled=None):
    """Execute the driver; returns (outcome dict, branch log).

    The outcome captures everything the engines must agree on for one
    run: fault, return value, printf output, instruction counts, branch
    trace, and the final memory image (every region's identity, liveness
    and full byte contents — frames are popped by then, so this is the
    surviving globals/string/heap state).
    """
    machine = Machine(module, MACHINE_OPTIONS, hooks, CompletenessFlags(),
                      compiled=compiled)
    fault = None
    value = None
    try:
        value = machine.run(DRIVER_ENTRY)
    except ExecutionFault as caught:
        fault = (caught.kind, str(caught.location))
    memory = sorted(
        (region.start, region.kind, region.label, region.live,
         bytes(region.data))
        for region in machine.memory._regions.values())
    outcome = {
        "fault": fault,
        "value": value,
        "output": b"".join(machine.output),
        "steps": machine.steps,
        "symbolic_steps": machine.symbolic_steps,
        "branches": machine.branches_executed,
        "covered": frozenset(machine.covered_branches),
        "memory": memory,
    }
    return outcome, list(hooks.branch_log)


def _random_vector(module, seed):
    """Draw one input vector by running the program concretely once."""
    from repro.testgen.oracles import _RecordingHooks

    im = InputVector()
    hooks = _RecordingHooks(im, random.Random(seed))
    machine = Machine(module, MACHINE_OPTIONS, hooks, CompletenessFlags())
    try:
        machine.run(DRIVER_ENTRY)
    except ExecutionFault:
        pass
    return im


def _directed(im):
    return _LoggingDirectedHooks(
        im.clone(), [], CompletenessFlags(), random.Random(0),
        DartOptions(**DART_OPTIONS))


class TestEngineProperty:
    """Compiled == interpreted, on random programs and random vectors."""

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_engines_agree_on_generated_programs(self, seed):
        program = generate_program(
            random.Random(seed), GeneratorOptions(max_statements=10),
            seed)
        module = build_test_program(program.render(), program.toplevel)
        compiled = CompiledProgram(module)
        im = _random_vector(module, seed * 1_000_003 + 17)

        # Taint off: concrete replay, symbolic stays dark on both sides.
        interp, interp_log = _run(module, _LoggingFixedHooks(im.clone()))
        fast, fast_log = _run(module, _LoggingFixedHooks(im.clone()),
                              compiled=compiled)
        assert fast == interp
        assert fast_log == interp_log
        assert interp["symbolic_steps"] == 0

        # Taint on: every input is a symbolic source; the compiled
        # engine must fall back to full tracking wherever taint flows
        # and still leave identical concrete state behind.
        interp, interp_log = _run(module, _directed(im))
        fast, fast_log = _run(module, _directed(im), compiled=compiled)
        assert fast == interp
        assert fast_log == interp_log


class TestCampaignAblation:
    """Whole directed campaigns, compiled vs. ``--no-compile``."""

    KEYS = ("iterations", "paths", "distinct_paths",
            "instructions_executed", "instructions_symbolic",
            "flips_attempted", "flips_sat", "runs_forced", "runs_new_path")

    def _campaign(self, source, toplevel, **overrides):
        options = DartOptions(**dict(DART_OPTIONS, **overrides))
        result = Dart(source, toplevel, options).run()
        return result

    def _assert_identical(self, compiled, interpreted):
        assert compiled.status == interpreted.status
        assert [(e.kind, str(e.location)) for e in compiled.errors] == \
            [(e.kind, str(e.location)) for e in interpreted.errors]
        assert compiled.stats.covered_branches == \
            interpreted.stats.covered_branches
        assert tuple(compiled.flags) == tuple(interpreted.flags)
        a, b = compiled.stats.summary(), interpreted.stats.summary()
        for key in self.KEYS:
            assert a[key] == b[key], key

    def test_ac_controller_campaign(self):
        from repro.programs.ac_controller import (
            AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL)

        compiled = self._campaign(
            AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, depth=2,
            max_iterations=200)
        interpreted = self._campaign(
            AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, depth=2,
            max_iterations=200, compiled_execution=False)
        self._assert_identical(compiled, interpreted)

    @pytest.mark.parametrize(
        "path", CORPUS_FILES,
        ids=[os.path.basename(p) for p in CORPUS_FILES])
    def test_corpus_replay_under_ablation(self, path):
        """Every checked-in fuzz repro explores identically without the
        compiled engine — the ``--no-compile`` ablation demanded by the
        PR 7 acceptance criteria, on the nastiest known programs."""
        payload = load_repro(path)
        compiled = self._campaign(payload["source"], payload["toplevel"])
        interpreted = self._campaign(payload["source"], payload["toplevel"],
                                     compiled_execution=False)
        self._assert_identical(compiled, interpreted)


class TestLoweringMechanics:
    SOURCE = """
        int helper(int x) { return x * 3 + 1; }
        int top(int a) {
            if (a > 10) return helper(a);
            return a - 1;
        }
    """

    def test_lowering_is_lazy_and_cached(self):
        module = build_test_program(self.SOURCE, "top")
        compiled = CompiledProgram(module)
        assert compiled.functions_compiled == 0
        im = InputVector()
        im.record(0, "int", 3)
        outcome, _ = _run(module, _LoggingFixedHooks(im),
                          compiled=compiled)
        assert outcome["fault"] is None
        # a=3 never calls helper: only the executed functions (driver +
        # top) were lowered, and lowering time was accounted.
        lowered = compiled.functions_compiled
        assert 0 < lowered < len(module.functions) + 1
        assert compiled.compile_seconds > 0.0
        im = InputVector()
        im.record(0, "int", 50)
        _run(module, _LoggingFixedHooks(im), compiled=compiled)
        assert compiled.functions_compiled == lowered + 1
        before = compiled.functions_compiled
        im = InputVector()
        im.record(0, "int", 50)
        _run(module, _LoggingFixedHooks(im), compiled=compiled)
        assert compiled.functions_compiled == before

    def test_module_mismatch_is_rejected(self):
        module = build_test_program(self.SOURCE, "top")
        other = compile_program("int f(void) { return 1; }")
        with pytest.raises(InterpreterError):
            Machine(module, MACHINE_OPTIONS, _LoggingFixedHooks(
                InputVector()), CompletenessFlags(),
                compiled=CompiledProgram(other))

    def test_folded_division_fault_keeps_location(self):
        """Constant folding must never fold a division by a folded zero:
        the fault is a runtime event with a source location."""
        source = """
            int top(int a) {
                if (a > 0) return a / (2 - 2);
                return 0;
            }
        """
        module = build_test_program(source, "top")
        compiled = CompiledProgram(module)
        im = InputVector()
        im.record(0, "int", 5)
        fast, _ = _run(module, _LoggingFixedHooks(im.clone()),
                       compiled=compiled)
        interp, _ = _run(module, _LoggingFixedHooks(im.clone()))
        assert fast == interp
        assert fast["fault"] is not None
        assert fast["fault"][0] == "division by zero"
