"""Unit tests for the Fourier-Motzkin refutation module."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.solver.fm import refutes
from repro.symbolic.expr import LinExpr


def le(coeffs, const=0):
    """A ``lin <= 0`` constraint."""
    return LinExpr(coeffs, const)


class TestRefutation:
    def test_empty_system(self):
        assert not refutes([])

    def test_constant_contradiction(self):
        assert refutes([le({}, 5)])  # 5 <= 0

    def test_constant_tautology(self):
        assert not refutes([le({}, -5)])

    def test_cycle_x_lt_y_lt_x(self):
        # x - y + 1 <= 0 and y - x + 1 <= 0: adding gives 2 <= 0.
        assert refutes([le({0: 1, 1: -1}, 1), le({0: -1, 1: 1}, 1)])

    def test_consistent_ordering(self):
        # x < y < z is satisfiable.
        assert not refutes([le({0: 1, 1: -1}, 1), le({1: 1, 2: -1}, 1)])

    def test_three_cycle(self):
        # x < y, y < z, z < x.
        assert refutes([
            le({0: 1, 1: -1}, 1),
            le({1: 1, 2: -1}, 1),
            le({2: 1, 0: -1}, 1),
        ])

    def test_bounds_squeeze(self):
        # x >= 10 and x <= 5.
        assert refutes([le({0: -1}, 10), le({0: 1}, -5)])

    def test_bounds_touching_are_satisfiable(self):
        # x >= 5 and x <= 5.
        assert not refutes([le({0: -1}, 5), le({0: 1}, -5)])

    def test_scaled_cycle(self):
        # 2x <= 2y - 2 and 3y <= 3x - 3.
        assert refutes([le({0: 2, 1: -2}, 2), le({1: 3, 0: -3}, 3)])

    def test_weighted_combination(self):
        # x + y <= -1, x - y <= -1, -2x <= 1  => adding first two: 2x <= -2
        # i.e. x <= -1, consistent with -2x <= 1 (x >= -0.5)? x <= -1 and
        # x >= -0.5 contradict.
        assert refutes([
            le({0: 1, 1: 1}, 1),
            le({0: 1, 1: -1}, 1),
            le({0: -2}, 1),
        ])

    def test_growth_cap_gives_up_soundly(self):
        # Many constraints over many variables: FM may give up (False),
        # but must never claim refutation of a satisfiable system.
        constraints = [
            le({v: 1, (v + 1) % 12: -1}, -1) for v in range(12)
        ]  # x_v <= x_{v+1} + 1 around a cycle: satisfiable (all equal)
        assert not refutes(constraints)


class TestRefutationSoundness:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.dictionaries(
                    st.integers(min_value=0, max_value=2),
                    st.integers(min_value=-4, max_value=4),
                    max_size=3,
                ),
                st.integers(min_value=-20, max_value=20),
            ),
            max_size=5,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=-10, max_value=10),
            min_size=3, max_size=3,
        ),
    )
    def test_never_refutes_a_satisfied_system(self, raw, witness):
        # Build constraints and keep only those the witness satisfies;
        # FM must not refute the resulting system.
        witness = {v: witness.get(v, 0) for v in range(3)}
        system = []
        for coeffs, const in raw:
            lin = LinExpr(coeffs, const)
            if lin.evaluate(witness) <= 0:
                system.append(lin)
        assert not refutes(system)
