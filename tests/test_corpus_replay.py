"""Replay every checked-in fuzz repro as a regression test.

Each ``tests/corpus/*.json`` file is a shrunk program + input vector that
once made an oracle diverge (the ``comment`` field names the seed and the
root cause).  Replaying them through the same oracle must now find
nothing: a repro that diverges again means the bug it pinned has been
reintroduced.
"""

import glob
import json
import os

import pytest

from repro.dart.config import DartOptions
from repro.dart.runner import Dart
from repro.testgen import OracleOptions, load_repro, replay_repro
from repro.testgen.harness import CORPUS_FORMAT

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: Generous budgets: corpus programs are tiny (the reducer capped them),
#: so even the slow oracles finish in well under a second each.
OPTS = OracleOptions(vectors=2, dart_iterations=120, forcing_iterations=24)


def test_corpus_is_not_empty():
    assert CORPUS_FILES, "tests/corpus/ lost its repro files"


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_repro_file_is_well_formed(path):
    payload = load_repro(path)
    assert payload["format"] == CORPUS_FORMAT
    assert payload["source"].strip()
    assert payload["oracle"]
    assert payload["comment"].startswith("fuzz seed ")
    assert payload["statements"] >= 1


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_repro_replays_clean(path):
    divergences = replay_repro(path, OPTS)
    assert divergences == [], "\n".join(d.describe() for d in divergences)


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_repro_search_is_directed_not_lucky(path):
    """The corpus programs all hinge on signed/unsigned wrap-around, the
    exact conjuncts the old faithfulness screen used to drop.  With the
    widening layer those conjuncts are encoded instead: a full session
    must keep ``all_faithful``, drop nothing, widen at least one conjunct
    (these programs cannot be explored faithfully without it), and reach
    its branches through SAT answers to flipped conjuncts — directed
    search, not random luck."""
    payload = load_repro(path)
    dart = Dart(payload["source"], payload["toplevel"],
                DartOptions(max_iterations=120, stop_on_first_error=False,
                            handle_signals=False, seed=0))
    result = dart.run()
    stats = result.stats
    assert stats.conjuncts_dropped_unfaithful == 0
    assert stats.conjuncts_widened > 0
    assert result.flags[3], "all_faithful degraded on a corpus repro"
    assert stats.flips_sat > 0, \
        "no flipped conjunct was ever solved SAT: coverage was luck"
    assert stats.runs_forced > 0, \
        "no solver-planned run executed its predicted branch stack"


def test_repro_files_record_their_seed():
    for path in CORPUS_FILES:
        with open(path) as handle:
            payload = json.load(handle)
        assert "seed{}".format(payload["seed"]) in os.path.basename(path)
