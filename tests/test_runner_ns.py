"""End-to-end reproduction of the Section 4.2 Needham-Schroeder
experiments (the fast rows; full Fig. 9/10 sweeps live in benchmarks/)."""

import pytest

from repro import dart_check, random_check
from repro.minic import compile_program
from repro.programs.needham_schroeder import (
    SHORTEST_ATTACK_DEPTH,
    ns_source,
    ns_toplevel,
)


class TestSourceGeneration:
    @pytest.mark.parametrize("model", ["possibilistic", "dolev_yao"])
    @pytest.mark.parametrize("fix", ["none", "buggy", "correct"])
    def test_all_variants_compile(self, model, fix):
        compile_program(ns_source(model, fix))

    def test_bad_model_rejected(self):
        with pytest.raises(ValueError):
            ns_source("telepathic")

    def test_bad_fix_rejected(self):
        with pytest.raises(ValueError):
            ns_source("possibilistic", fix="duct_tape")

    def test_toplevels(self):
        assert ns_toplevel("possibilistic") == "ns_step"
        assert ns_toplevel("dolev_yao") == "ns_dy_step"


class TestPossibilisticModel:
    """Fig. 9: no error at depth 1; attack found at depth 2."""

    def test_depth1_no_error_full_coverage(self):
        result = dart_check(ns_source("possibilistic"), "ns_step",
                            depth=1, max_iterations=2000, seed=0)
        assert result.status == "complete"

    def test_depth2_attack_found(self):
        result = dart_check(ns_source("possibilistic"), "ns_step",
                            depth=2, max_iterations=5000, seed=0)
        assert result.status == "bug_found"

    def test_attack_is_projection_from_b(self):
        # Inputs per step: (target, mtype, key, d1, d2, d3).  Both
        # messages of the found attack go to B (target == AGENT_B == 2),
        # first a msg1 claiming to be A, then a msg3 guessing B's nonce —
        # the paper's "projection of the attack from B's point of view".
        result = dart_check(ns_source("possibilistic"), "ns_step",
                            depth=2, max_iterations=5000, seed=0)
        inputs = result.first_error().inputs
        step1, step2 = inputs[:6], inputs[6:12]
        assert step1[0] == 2 and step1[1] == 1  # msg1 to B
        assert step1[4] == 1                    # claiming initiator A
        assert step2[0] == 2 and step2[1] == 3  # msg3 to B
        assert step2[3] == 102                  # "guessed" nonce Nb

    def test_random_search_fails_at_depth2(self):
        result = random_check(ns_source("possibilistic"), "ns_step",
                              depth=2, max_iterations=2000, seed=0)
        assert not result.found_error


class TestDolevYaoModel:
    """Fig. 10: attack appears only at input length 4."""

    def test_depth1_complete_no_error(self):
        result = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                            depth=1, max_iterations=2000, seed=0)
        assert result.status == "complete"

    def test_depth2_complete_no_error(self):
        result = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                            depth=2, max_iterations=5000, seed=0)
        assert result.status == "complete"

    def test_search_space_grows_steeply(self):
        r1 = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                        depth=1, max_iterations=2000, seed=0)
        r2 = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                        depth=2, max_iterations=5000, seed=0)
        assert r2.iterations > 10 * r1.iterations

    def test_shortest_attack_depths_documented(self):
        assert SHORTEST_ATTACK_DEPTH == {
            "possibilistic": 2, "dolev_yao": 4,
        }

    @pytest.mark.slow
    def test_depth3_complete_no_error(self):
        result = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                            depth=3, max_iterations=20000, seed=0)
        assert result.status == "complete"
        assert not result.found_error


class TestLoweFixVariants:
    """Section 4.2's coda: the buggy fix is still attackable at the
    projection level; the correct fix blocks that path."""

    def test_possibilistic_projection_attack_unaffected_by_fix(self):
        # The B-side projection doesn't involve A's check at all.
        result = dart_check(ns_source("possibilistic", fix="correct"),
                            "ns_step", depth=2, max_iterations=5000,
                            seed=0)
        assert result.status == "bug_found"

    def test_buggy_fix_sources_differ(self):
        assert ns_source("dolev_yao", "buggy") != \
            ns_source("dolev_yao", "correct")
        assert "d3 != AGENT_B" in ns_source("dolev_yao", "buggy")

    def test_correct_fix_checks_peer(self):
        assert "d3 != a_peer" in ns_source("dolev_yao", "correct")
