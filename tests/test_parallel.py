"""Parallel generational search: jobs>1 must match the serial engine."""

import os

import pytest

from repro import DartOptions
from repro.dart.runner import Dart
from repro.programs import samples
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.needham_schroeder import ns_source


def run(source, toplevel, jobs, **overrides):
    options = DartOptions(jobs=jobs, **overrides)
    return Dart(source, toplevel, options).run()


def error_set(result):
    return sorted({(e.kind, str(e.location)) for e in result.errors})


class TestOptionValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            DartOptions(jobs=0)

    def test_jobs_excluded_from_digest(self):
        # jobs is a budget-style knob: a resumed session may change its
        # parallelism without invalidating the checkpoint.
        assert DartOptions(jobs=1).digest() == DartOptions(jobs=4).digest()

    def test_slicing_and_cache_in_digest(self):
        # ...whereas slicing/caching change solver models, hence the
        # search trajectory a checkpoint encodes.
        base = DartOptions().digest()
        assert DartOptions(constraint_slicing=False).digest() != base
        assert DartOptions(solver_cache=False).digest() != base


class TestSamplesParallelMatchesSerial:
    def test_bfs_same_errors_on_samples(self):
        for source, toplevel in (
            (samples.H_SOURCE, "h"),
            (samples.FILTER_SOURCE, "entry"),
            (samples.STRUCT_CAST_SOURCE, "bar"),
        ):
            serial = run(source, toplevel, 1, strategy="bfs",
                         max_iterations=300, seed=7,
                         stop_on_first_error=False)
            parallel = run(source, toplevel, 4, strategy="bfs",
                           max_iterations=300, seed=7,
                           stop_on_first_error=False)
            assert error_set(serial) == error_set(parallel), toplevel
            assert serial.status == parallel.status, toplevel

    def test_complete_verdict_preserved(self):
        serial = run(samples.Z_SOURCE, "f", 1, strategy="bfs",
                     max_iterations=60, seed=1)
        parallel = run(samples.Z_SOURCE, "f", 4, strategy="bfs",
                       max_iterations=60, seed=1)
        assert serial.status == parallel.status == "complete"
        assert serial.flags == parallel.flags == (True, True, True, True)
        assert (serial.stats.distinct_paths
                == parallel.stats.distinct_paths)

    def test_random_strategy_same_errors(self):
        serial = run(samples.FILTER_SOURCE, "entry", 1, strategy="random",
                     max_iterations=300, seed=5)
        parallel = run(samples.FILTER_SOURCE, "entry", 4,
                       strategy="random", max_iterations=300, seed=5)
        assert error_set(serial) == error_set(parallel)

    def test_parallel_is_deterministic(self):
        results = [
            run(samples.FILTER_SOURCE, "entry", 4, strategy="bfs",
                max_iterations=300, seed=7)
            for _ in range(2)
        ]
        assert results[0].iterations == results[1].iterations
        assert error_set(results[0]) == error_set(results[1])
        first = results[0].first_error().inputs
        assert first == results[1].first_error().inputs

    def test_dfs_ignores_jobs(self):
        serial = run(samples.H_SOURCE, "h", 1, strategy="dfs",
                     max_iterations=50, seed=7)
        parallel = run(samples.H_SOURCE, "h", 4, strategy="dfs",
                       max_iterations=50, seed=7)
        assert serial.iterations == parallel.iterations
        assert (serial.first_error().inputs
                == parallel.first_error().inputs)


class TestBenchmarksParallelMatchesSerial:
    """Satellite: same error sets on the paper's own benchmarks."""

    def test_ac_controller_depth2(self):
        serial = run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, 1,
                     strategy="bfs", depth=2, max_iterations=400, seed=3,
                     stop_on_first_error=False)
        parallel = run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, 4,
                       strategy="bfs", depth=2, max_iterations=400, seed=3,
                       stop_on_first_error=False)
        assert error_set(serial) == error_set(parallel)
        assert serial.status == parallel.status == "bug_found"

    def test_needham_schroeder_possibilistic_depth2(self):
        source = ns_source("possibilistic")
        serial = run(source, "ns_step", 1, strategy="bfs", depth=2,
                     max_iterations=50_000, seed=0)
        parallel = run(source, "ns_step", 4, strategy="bfs", depth=2,
                       max_iterations=50_000, seed=0)
        assert error_set(serial) == error_set(parallel)
        assert serial.status == parallel.status == "bug_found"


class TestCheckpointInterop:
    def test_parallel_checkpoint_resumes_serially_and_back(self, tmp_path):
        state = os.path.join(str(tmp_path), "state.json")

        def phase(jobs, max_iterations):
            return run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, jobs,
                       strategy="bfs", depth=2,
                       max_iterations=max_iterations, seed=3,
                       stop_on_first_error=False, state_file=state)

        interrupted = phase(4, 10)
        assert interrupted.status == "exhausted"
        assert os.path.exists(state)
        resumed = phase(1, 400)
        assert resumed.resumed
        assert resumed.status == "bug_found"
        assert error_set(resumed) == [("abort", "<program>:19:5")]

    def test_serial_checkpoint_resumes_in_parallel(self, tmp_path):
        state = os.path.join(str(tmp_path), "state.json")

        def phase(jobs, max_iterations):
            return run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL, jobs,
                       strategy="bfs", depth=2,
                       max_iterations=max_iterations, seed=3,
                       stop_on_first_error=False, state_file=state)

        interrupted = phase(1, 10)
        assert interrupted.status == "exhausted"
        resumed = phase(4, 400)
        assert resumed.resumed
        assert resumed.status == "bug_found"
        assert error_set(resumed) == [("abort", "<program>:19:5")]


class TestFaultContainment:
    def test_worker_quarantines_pathological_run(self):
        # A run exceeding the per-run watchdog budget is quarantined by
        # the worker and reported as data; the generation survives.
        source = """
        int spin(int n) {
          if (n > 0) {
            while (1) { n = n + 1; }
          }
          return n;
        }
        """
        result = run(source, "spin", 2, strategy="bfs", max_iterations=20,
                     seed=0, run_time_limit=0.2, max_steps=100_000_000)
        assert result.quarantined
        classifications = {q.classification for q in result.quarantined}
        assert classifications <= {"run-timeout", "resource-exhausted"}
        # Degraded honestly: a lost run voids the completeness claim.
        assert result.status != "complete"
