"""Unit tests for the instrumented run's bookkeeping (Figs. 3-4)."""

import random

import pytest

from repro.dart.config import DartOptions
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.pathcond import PathRecord, StackEntry
from repro.symbolic.expr import CmpExpr, EQ, LinExpr
from repro.symbolic.flags import CompletenessFlags


def make_hooks(predicted=None, im=None, options=None):
    return DirectedHooks(
        im or InputVector(),
        predicted or [],
        CompletenessFlags(),
        random.Random(0),
        options or DartOptions(),
    )


def constraint(var=0):
    return CmpExpr(EQ, LinExpr({var: 1}))


class TestInputAcquisition:
    def test_fresh_inputs_randomized_and_recorded(self):
        hooks = make_hooks()
        value, var = hooks.acquire_input("int")
        assert var.ordinal == 0
        assert hooks.im.value_or_none(0, "int") == value

    def test_replay_from_im(self):
        im = InputVector()
        im.record(0, "int", 1234)
        hooks = make_hooks(im=im)
        value, var = hooks.acquire_input("int")
        assert value == 1234

    def test_ordinals_increase(self):
        hooks = make_hooks()
        _, v0 = hooks.acquire_input("int")
        _, v1 = hooks.acquire_input("char")
        assert (v0.ordinal, v1.ordinal) == (0, 1)
        assert hooks.inputs_consumed == 2

    def test_kind_mismatch_rerandomizes(self):
        im = InputVector()
        im.record(0, "int", 1 << 20)  # out of char range
        hooks = make_hooks(im=im)
        value, _ = hooks.acquire_input("char")
        assert -128 <= value <= 127

    def test_ptr_choice_tracked_by_default(self):
        hooks = make_hooks()
        _, var = hooks.acquire_input("ptr_choice")
        assert var is not None
        assert (var.lo, var.hi) == (0, 1)

    def test_ptr_choice_untracked_in_paper_mode(self):
        options = DartOptions(directed_pointer_choices=False)
        hooks = make_hooks(options=options)
        _, var = hooks.acquire_input("ptr_choice")
        assert var is None
        # An untracked input must cost the completeness claim.
        assert not hooks.flags.complete


class TestCompareAndUpdateStack:
    def test_first_run_appends_with_done_false(self):
        hooks = make_hooks()
        hooks.on_branch(True, constraint(), None)
        hooks.on_branch(False, None, None)
        stack = hooks.finished_stack()
        assert [e.branch for e in stack] == [1, 0]
        assert all(not e.done for e in stack)

    def test_record_aligned_with_constraints(self):
        hooks = make_hooks()
        c = constraint()
        hooks.on_branch(True, c, None)
        hooks.on_branch(False, None, None)
        assert hooks.record.constraints == [c, None]
        assert hooks.record.path_key() == (1, 0)

    def test_prediction_match_marks_last_done(self):
        predicted = [StackEntry(1), StackEntry(0)]
        hooks = make_hooks(predicted=predicted)
        hooks.on_branch(True, constraint(), None)
        hooks.on_branch(False, constraint(1), None)
        stack = hooks.finished_stack()
        assert stack[1].done        # k == |stack|-1 confirmed
        assert not stack[0].done    # interior entries untouched

    def test_prediction_mismatch_raises_and_clears_forcing(self):
        predicted = [StackEntry(1)]
        hooks = make_hooks(predicted=predicted)
        with pytest.raises(ForcingMismatch) as exc:
            hooks.on_branch(False, constraint(), None)
        assert exc.value.index == 0
        assert not hooks.flags.forcing_ok

    def test_execution_beyond_prediction_appends(self):
        predicted = [StackEntry(1)]
        hooks = make_hooks(predicted=predicted)
        hooks.on_branch(True, constraint(), None)
        hooks.on_branch(True, constraint(1), None)
        stack = hooks.finished_stack()
        assert len(stack) == 2
        assert not stack[1].done

    def test_predicted_stack_not_mutated(self):
        predicted = [StackEntry(1)]
        hooks = make_hooks(predicted=predicted)
        hooks.on_branch(True, constraint(), None)
        assert not predicted[0].done  # hooks work on a copy


class TestStackEntry:
    def test_flipped(self):
        assert StackEntry(1).flipped().branch == 0
        assert StackEntry(0).flipped().branch == 1

    def test_copy_independent(self):
        entry = StackEntry(1)
        copy = entry.copy()
        copy.done = True
        assert not entry.done

    def test_path_record_len(self):
        record = PathRecord()
        record.append(1, None)
        assert len(record) == 1
