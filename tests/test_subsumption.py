"""The subsumption layer: UNSAT-core cache tier + worklist dedup.

Covers the two pruning mechanisms end to end:

* the **cross-subtree UNSAT-core tier** — greedy-deletion core
  extraction (:func:`repro.dart.solve._extract_core`), the recorded
  core refuting future containing queries without a solver call, and
  the smallest-conjunct-key index answering exactly like a full linear
  scan (property-pinned);
* the **path-prefix worklist dedup** — fingerprint-equal children are
  admitted once per error salt, never across differing recorded
  errors, never once a completeness flag has degraded, and the seen
  set survives a checkpoint round trip;
* the **invariance contract** — a subsuming session reports the same
  verdict, error set and completeness flags as its ``--no-subsumption``
  ablation, on fixed programs and on generated mini-C programs (the
  PR 3 fuzz oracles re-used as a property).
"""

import random
from types import SimpleNamespace

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import DartOptions, dart_check
from repro.dart.independence import coupling_classes, dedup_eligible
from repro.dart.persist import SessionCheckpoint
from repro.dart.report import RunStats
from repro.dart.runner import _Session
from repro.dart.solve import _extract_core, candidate_indices, \
    solve_with_retry
from repro.obs.trace import TraceBus
from repro.solver import Solver
from repro.solver.cache import (
    SolverResultCache,
    UNSAT_CORE,
    UNSAT_SUPERSET,
    _DEFAULT_DOMAIN,
)
from repro.symbolic.expr import CmpExpr, GE, LE, LinExpr
from repro.symbolic.flags import CompletenessFlags
from repro.testgen import OracleBattery, OracleOptions, generate_program

def cmp(op, coeffs, const=0):
    return CmpExpr(op, LinExpr(coeffs, const))


def ge(var, bound):
    """x_var >= bound."""
    return cmp(GE, {var: 1}, -bound)


def le(var, bound):
    """x_var <= bound."""
    return cmp(LE, {var: 1}, -bound)


#: x0 >= 10 and x0 <= 4 — a minimal conflicting pair.
CORE = [ge(0, 10), le(0, 4)]


class TestCoreTier:
    def test_recorded_core_refutes_containing_query(self):
        cache = SolverResultCache()
        cache.store_core(CORE, {})
        hit = cache.lookup(CORE + [ge(1, 0), le(2, 7)], {})
        assert hit is not None
        result, tier = hit
        assert tier == UNSAT_CORE
        assert result.status == "unsat"

    def test_core_does_not_fire_on_non_superset(self):
        cache = SolverResultCache()
        cache.store_core(CORE, {})
        # Only one of the two core conjuncts present: no refutation.
        assert cache.lookup([ge(0, 10), ge(1, 0)], {}) is None

    def test_core_respects_domain_widths(self):
        cache = SolverResultCache()
        cache.store_core(CORE, {0: (-100, 100)})
        # Same conjuncts under a *wider* domain: the recorded proof
        # does not cover the extra width, so no hit.
        assert cache.lookup(CORE, {0: (-1000, 1000)}) is None
        # No wider: refuted.
        assert cache.lookup(CORE, {0: (-50, 50)}) is not None

    def test_core_tier_survives_clear(self):
        cache = SolverResultCache()
        cache.store_core(CORE, {})
        cache.clear()
        assert cache.lookup(CORE + [ge(1, 0)], {}) is None

    def test_core_eviction_keeps_index_consistent(self):
        cache = SolverResultCache(max_cores=4)
        for bound in range(10, 30):
            cache.store_core([ge(0, bound), le(0, bound - 6)], {})
        # Evicted cores must not answer; the survivors must.
        assert cache.lookup([ge(0, 10), le(0, 4)], {}) is None
        assert cache.lookup([ge(0, 29), le(0, 23), ge(1, 0)], {}) \
            is not None


class TestCoreExtraction:
    DOMAINS = {0: (-100, 100), 1: (-100, 100)}

    def test_greedy_deletion_strips_satisfiable_conjuncts(self):
        stats = RunStats()
        core = _extract_core(Solver(seed=0), CORE + [ge(1, 0)],
                             self.DOMAINS, stats, None)
        assert core is not None
        assert sorted(repr(c) for c in core) == \
            sorted(repr(c) for c in CORE)
        # Probes are not logical solver calls: the funnel invariant
        # solver_calls == sat + unsat + unknown must stay untouched.
        assert stats.solver_calls == 0
        assert stats.solver_sat == stats.solver_unsat == 0

    def test_already_minimal_set_returns_none(self):
        assert _extract_core(Solver(seed=0), list(CORE), self.DOMAINS,
                             None, None) is None

    def test_solve_with_retry_records_and_reuses_core(self):
        solver = Solver(seed=0)
        cache = SolverResultCache()
        stats = RunStats()
        first = solve_with_retry(solver, CORE + [ge(1, 3)], self.DOMAINS,
                                 stats=stats, cache=cache, subsume=True)
        assert first.status == "unsat"
        calls_after_first = stats.solver_calls
        # A *different* superset of the extracted core: refuted from
        # the core tier, no new solver call, counted as subsumed.
        second = solve_with_retry(solver, CORE + [le(1, 9)], self.DOMAINS,
                                  stats=stats, cache=cache, subsume=True)
        assert second.status == "unsat"
        assert stats.solver_calls == calls_after_first
        assert stats.flips_subsumed_core == 1

    def test_no_core_recorded_without_subsume(self):
        solver = Solver(seed=0)
        cache = SolverResultCache()
        result = solve_with_retry(solver, CORE + [ge(1, 3)], self.DOMAINS,
                                  cache=cache, subsume=False)
        assert result.status == "unsat"
        assert len(cache._cores) == 0


def _linear_refute(store, cons_keys, domains):
    """Reference oracle: the pre-index full scan of an UNSAT store."""
    for _key, (cached_cons, cached_domains) in store.items():
        if not cached_cons <= cons_keys:
            continue
        for var, (lo, hi) in cached_domains.items():
            qlo, qhi = domains.get(var, _DEFAULT_DOMAIN)
            if qlo < lo or qhi > hi:
                break
        else:
            return True
    return False


#: A small conjunct pool so Hypothesis-drawn sets actually produce
#: subset relations (fresh random conjuncts almost never would).
_POOL = [ge(var, bound) for var in range(3) for bound in (0, 5, 10)] + \
        [le(var, bound) for var in range(3) for bound in (-1, 4, 9)]

_conjunct_sets = st.lists(
    st.sampled_from(_POOL), min_size=1, max_size=4, unique_by=repr
)


class TestIndexedRefuteMatchesLinearScan:
    """Satellite: the smallest-conjunct-key index is a pure pruning.

    For both UNSAT tiers, every query must get the same hit/miss
    verdict from the indexed ``_refute`` as from a full linear scan of
    the store — the index can skip buckets, never hits.
    """

    @given(stored=st.lists(_conjunct_sets, max_size=6),
           query=_conjunct_sets)
    @settings(max_examples=200, deadline=None)
    def test_identical_verdicts(self, stored, query):
        cache = SolverResultCache()
        for constraints in stored:
            cache.store_core(constraints, {})
        key = cache.query_key(query, {})
        indexed = cache._refute(cache._cores, cache._core_index,
                                key[1], {})
        reference = _linear_refute(cache._cores, key[1], {})
        assert (indexed is not None) == reference


CROSS = """
int f(int a, int b) {
  int r;
  r = 0;
  if (a == 1) r = 1;
  if (b == 2) abort();
  return r;
}
"""


class TestWorklistDedup:
    def _run(self, **overrides):
        params = dict(strategy="bfs", seed=0, max_iterations=200,
                      stop_on_first_error=False)
        params.update(overrides)
        return dart_check(CROSS, "f", **params)

    def test_dedup_fires_and_preserves_outcome(self):
        on = self._run()
        off = self._run(subsumption=False)
        assert on.stats.worklist_deduped > 0
        assert off.stats.worklist_deduped == 0
        assert on.status == off.status
        assert self._errors(on) == self._errors(off)
        assert tuple(on.flags) == tuple(off.flags)
        assert on.stats.iterations < off.stats.iterations

    def test_serial_matches_jobs2(self):
        serial = self._run()
        pooled = self._run(jobs=2)
        assert serial.status == pooled.status
        assert self._errors(serial) == self._errors(pooled)
        assert serial.stats.iterations == pooled.stats.iterations

    @staticmethod
    def _errors(result):
        return sorted((e.kind, str(e.location)) for e in result.errors)


def _fake_session(seen=None):
    fake = SimpleNamespace(flags=CompletenessFlags(), stats=RunStats(),
                           trace=TraceBus(),
                           _dedup_seen=seen if seen is not None else set())
    return fake


def _child(fp):
    # Stack/IM/bound are opaque to _admit_children; sentinels suffice.
    return (object(), object(), 1, fp)


class TestErrorSalt:
    def test_same_fingerprint_same_salt_deduped(self):
        fake = _fake_session()
        salt = ("abort", "p.c:3:5")
        first = list(_Session._admit_children(
            fake, [_child("fp1"), _child("fp1")], salt))
        assert len(first) == 1
        assert fake.stats.worklist_deduped == 1

    def test_differing_errors_never_deduped(self):
        fake = _fake_session()
        kept = list(_Session._admit_children(fake, [_child("fp1")],
                                             ("abort", "p.c:3:5")))
        kept += list(_Session._admit_children(fake, [_child("fp1")],
                                              None))
        kept += list(_Session._admit_children(
            fake, [_child("fp1")], ("assert", "p.c:9:1")))
        assert len(kept) == 3
        assert fake.stats.worklist_deduped == 0

    def test_no_fingerprint_means_no_dedup(self):
        fake = _fake_session()
        kept = list(_Session._admit_children(
            fake, [_child(None), _child(None)], None))
        assert len(kept) == 2
        assert fake.stats.worklist_deduped == 0

    def test_degraded_flags_disable_dedup(self):
        fake = _fake_session()
        fake.flags.clear_linear()
        kept = list(_Session._admit_children(
            fake, [_child("fp1"), _child("fp1")], None))
        assert len(kept) == 2
        assert fake.stats.worklist_deduped == 0


class TestCheckpointRoundTrip:
    def test_dedup_seen_survives_encoding(self):
        seen = [("a" * 64, ("abort", "p.c:3:5")), ("b" * 64, None)]
        checkpoint = SessionCheckpoint(
            fingerprint={"source": "x", "toplevel": "f", "options": "d"},
            engine="generational",
            rng_state=random.Random(0).getstate(),
            flags=(True, True, True, True),
            counters={}, distinct_paths=[], covered_branches=[],
            errors=[], quarantined=[], worklist=[],
            dedup_seen=seen,
        )
        decoded = SessionCheckpoint.from_body(checkpoint.to_body())
        assert decoded.dedup_seen == seen

    def test_absent_field_decodes_empty(self):
        checkpoint = SessionCheckpoint(
            fingerprint={}, engine="generational",
            rng_state=random.Random(0).getstate(),
            flags=(True, True, True, True),
            counters={}, distinct_paths=[], covered_branches=[],
            errors=[], quarantined=[],
        )
        body = checkpoint.to_body()
        assert "dedup_seen" not in body
        assert SessionCheckpoint.from_body(body).dedup_seen == []


class TestStrategyValidation:
    """Satellite: a typo'd strategy fails before any candidate scan."""

    def test_unknown_strategy_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            candidate_indices([], "bffs", random.Random(0))

    def test_validation_happens_before_the_stack_is_touched(self):
        # A non-iterable stack: reaching the candidate scan would raise
        # TypeError, so a ValueError proves the hoisted check fired
        # first.
        with pytest.raises(ValueError):
            candidate_indices(None, "breadth", random.Random(0))

    def test_cli_strategy_typo_fails_fast(self):
        # DartOptions screens the strategy at construction — before any
        # solver work, let alone a candidate scan.
        with pytest.raises(ValueError, match="strategy must be one of"):
            dart_check(CROSS, "f", strategy="bredth", max_iterations=5)


#: Small budgets: one oracle session stays well under 100ms.
_FAST = dict(vectors=1, dart_iterations=60, forcing_iterations=4)


class TestConfigInvarianceProperty:
    """Satellite: subsumption never changes the observable outcome.

    Over generated mini-C programs (the PR 3 fuzz generator), a
    subsuming session and its ablation must agree on verdict, error
    set, branch coverage and completeness flags whenever both runs are
    definitive — the same contract the fuzz campaign's ``nosubsume``
    matrix entry enforces continuously.
    """

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_ablation_is_observationally_equal(self, seed):
        program = generate_program(random.Random(seed), seed=seed)
        battery = OracleBattery(OracleOptions(**_FAST))
        on, _ = battery._session(program, check_models=False)
        off, _ = battery._session(program, check_models=False,
                                  subsumption=False)
        divergences = battery._compare_sessions(
            "subsume", on, "nosubsume", off)
        assert divergences == [], [d.detail for d in divergences]
        if battery._definitive(on) and battery._definitive(off):
            assert tuple(on.flags) == tuple(off.flags)


#: Four independent guards feed an accumulator whose final value gates
#: an abort: any fingerprint keyed only on the flipped group's query
#: would merge entries whose divergence surfaces in the *future*, and
#: the abort would be pruned away.  The coupling analysis must put all
#: four parameters in one class, disabling dedup for the program.
HITS = """
int f(int a, int b, int c, int d) {
    int hits;
    hits = 0;
    if (a == 3) hits = hits + 1;
    if (b == 7) hits = hits + 1;
    if (c == 11) hits = hits + 1;
    if (d == 13) hits = hits + 1;
    if (hits == 3) { if (a == 3) abort(); }
    return hits;
}
"""

#: Pure control coupling, no dataflow: the second ``a == 5`` test sits
#: under ``b``'s guard, so the abort needs both inputs — the classes
#: must merge even though no variable ever flows into another.
CONTROL = """
int f(int a, int b) {
    if (a == 5) { }
    if (b == 2) { if (a == 5) abort(); }
    return 0;
}
"""


class TestIndependenceAnalysis:
    """The static coupling-class analysis gating worklist dedup."""

    def test_cross_params_are_singleton_classes(self):
        classes = coupling_classes(CROSS, "f", 1)
        assert classes == {0: frozenset({0}), 1: frozenset({1})}

    def test_depth_replicates_classes_per_call(self):
        classes = coupling_classes(CROSS, "f", 2)
        assert classes == {ordinal: frozenset({ordinal})
                           for ordinal in range(4)}

    def test_accumulator_couples_every_guard(self):
        classes = coupling_classes(HITS, "f", 1)
        assert classes[0] == frozenset({0, 1, 2, 3})

    def test_control_context_couples_without_dataflow(self):
        classes = coupling_classes(CONTROL, "f", 1)
        assert classes[0] == frozenset({0, 1})

    def test_short_circuit_couples_operands(self):
        source = "int f(int a, int b) { if (a > 3 && b > 4) abort(); " \
                 "return 0; }"
        assert coupling_classes(source, "f", 1)[0] == frozenset({0, 1})

    def test_division_divisor_is_a_predicate(self):
        # Whether ``a / b`` traps depends on b *under a's guard*: the
        # faulting expression couples both.
        source = "int f(int a, int b) { int r; r = 0; " \
                 "if (a > 3) r = 10 / b; return r; }"
        assert coupling_classes(source, "f", 1)[0] == frozenset({0, 1})

    @pytest.mark.parametrize("source", [
        "int g; int f(int a) { g = a; return 0; }",       # global state
        "int f(int a) { int i; for (i = 0; i < a; i++) { } return 0; }",
        "int h(int x) { return x; } int f(int a) { return h(a); }",
        "int f(int *p) { return 0; }",                    # pointer coin
        "int f(int a) { int v[3]; v[0] = a; return v[0]; }",
        "int f(int a) { int x; if (a > 0) x = 1; return x; }",  # maybe-unset
    ])
    def test_conservative_latches_disable_dedup(self, source):
        assert coupling_classes(source, "f", 1) is None

    def test_eligibility_requires_class_closure(self):
        classes = coupling_classes(HITS, "f", 1)
        assert not dedup_eligible({0}, classes)
        assert dedup_eligible({0, 1, 2, 3}, classes)
        cross = coupling_classes(CROSS, "f", 1)
        assert dedup_eligible({1}, cross)

    def test_accumulator_abort_survives_subsumption(self):
        # The v3 soundness regression: with dedup gated off for HITS,
        # the subsuming session must still reach the guarded abort.
        outcomes = []
        for subsumption in (True, False):
            result = dart_check(HITS, "f", strategy="bfs", seed=0,
                                max_iterations=600,
                                stop_on_first_error=False,
                                subsumption=subsumption)
            outcomes.append((result.status,
                             sorted((e.kind, str(e.location))
                                    for e in result.errors)))
            assert result.stats.worklist_deduped == 0
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == "bug_found"
