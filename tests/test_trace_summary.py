"""Integration tests: --trace output, trace-summary, and merge determinism.

Runs the Section 4.1 AC controller (fixed seed, full depth-2
exploration) with tracing on and pins the ISSUE's acceptance bars:

* the branch-flip funnel computed from the trace equals the session's
  reported statistics counter-for-counter;
* the per-phase times in the trace sum to within 10% of the session
  wall time;
* the deterministic sections of ``trace-summary`` output are golden;
* the metrics registry merges deterministically under ``--jobs``.
"""

import json

import pytest

from repro import DartOptions, dart_check
from repro.cli import main
from repro.obs import read_trace, render_summary, summarize_trace
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)

SESSION = dict(depth=2, max_iterations=200, seed=7,
               stop_on_first_error=False)

# Search-deterministic statistics: identical for any jobs count and any
# worker scheduling (solver latency and the cache-tier split are not —
# pool workers reset their local cache layer per item and answer from
# the shared exact-tier store, so hits can come from a different tier
# than the serial session-long cache would use).
DETERMINISTIC_KEYS = (
    "iterations", "paths", "distinct_paths", "branches", "steps",
    "instructions_executed", "instructions_symbolic",
    "flips_attempted", "flips_sat", "runs_forced", "runs_new_path",
)


def traced_session(tmp_path, **overrides):
    """One traced AC-controller session; returns (result, events)."""
    trace = tmp_path / "trace.jsonl"
    options = DartOptions(trace_file=str(trace), **dict(SESSION, **overrides))
    result = dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                        options)
    return result, list(read_trace(str(trace)))


class TestFunnelEqualsStats:
    def check(self, tmp_path, **overrides):
        result, events = traced_session(tmp_path, **overrides)
        summary = summarize_trace(events)
        stats = result.stats
        assert summary["funnel"] == {
            "attempted": stats.flips_attempted,
            "sat": stats.flips_sat,
            "forced": stats.runs_forced,
            "new_path": stats.runs_new_path,
        }
        assert summary["iterations"] == stats.iterations
        assert summary["runs"]["total"] == stats.iterations
        assert summary["status"] == result.status
        # Every negated conjunct was answered by the solver or a cache
        # tier (exact hit, unsat shortcut, or model reuse).
        assert summary["funnel"]["attempted"] == (
            stats.solver_calls + stats.cache_hits
            + stats.cache_unsat_shortcuts + stats.cache_model_reuses)

    def test_serial_dfs(self, tmp_path):
        self.check(tmp_path, strategy="dfs")

    def test_parallel_bfs(self, tmp_path):
        self.check(tmp_path, strategy="bfs", jobs=2)


class TestPhaseAttribution:
    def test_phase_times_sum_within_10pct_of_wall(self, tmp_path):
        # Retry to damp scheduler jitter: the bar is that an undisturbed
        # session attributes >= 90% of its wall time, not that every CI
        # timeslice is quiet.
        best = 0.0
        for attempt in range(3):
            subdir = tmp_path / str(attempt)
            subdir.mkdir()
            _, events = traced_session(subdir, strategy="dfs")
            best = max(best,
                       summarize_trace(events)["phase_coverage"])
            if best >= 0.9:
                break
        assert best >= 0.9, (
            "only {:.1%} of wall attributed to phases".format(best))

    def test_phases_are_disjoint_and_positive(self, tmp_path):
        _, events = traced_session(tmp_path, strategy="dfs")
        summary = summarize_trace(events)
        phases = summary["phases"]
        assert set(phases) == {"execute", "compile", "solve", "cache",
                               "checkpoint"}
        assert phases["execute"] > 0 and phases["solve"] > 0
        attributed = sum(phases.values())
        assert attributed <= summary["wall_s"] * 1.01


class TestGoldenSummary:
    # The exhaustive depth-2 exploration at seed 7: 25 runs discover 25
    # distinct paths via 60 negated conjuncts, 24 of them feasible.
    # These values are pinned by the fixed seed; an engine change that
    # alters the search order must update them consciously.
    FUNNEL_LINE = "  attempted 60 -> sat 24 -> forced 24 -> new path 25"
    RUNS_LINE = ("runs: 25 total, 24 ok, 1 fault, 0 mismatch, "
                 "0 quarantined")
    VERDICTS_LINE = "verdicts: sat 24 / unsat 36 / unknown 0"
    CACHE_LINE = "cache tiers: exact 34, miss 21, model-reuse 5"

    def test_deterministic_sections(self, tmp_path):
        result, events = traced_session(tmp_path, strategy="dfs")
        assert result.status == "bug_found"
        text = render_summary(summarize_trace(events))
        lines = text.splitlines()
        assert self.FUNNEL_LINE in lines
        assert self.RUNS_LINE in lines
        assert self.VERDICTS_LINE in lines
        assert self.CACHE_LINE in lines
        assert lines[0].startswith("trace summary: ")
        assert "branch-flip funnel:" in lines
        assert "event counts:" in lines

    def test_event_counts_are_deterministic(self, tmp_path):
        _, events = traced_session(tmp_path, strategy="dfs")
        counts = summarize_trace(events)["event_counts"]
        assert counts["session_started"] == 1
        assert counts["session_finished"] == 1
        assert counts["run_started"] == 25
        assert counts["run_finished"] == 25
        assert counts["conjunct_negated"] == 60
        # 24 sat + 36 unsat answered across solver and cache.
        assert counts.get("solver_answered", 0) \
            + counts.get("cache_lookup", 0) >= 60


class TestTraceSummaryCli:
    def write_trace(self, tmp_path):
        result, _ = traced_session(tmp_path, strategy="dfs")
        assert result.status == "bug_found"
        return str(tmp_path / "trace.jsonl")

    def test_text_output(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        assert main(["trace-summary", path]) == 0
        out = capsys.readouterr().out
        assert "branch-flip funnel:" in out
        assert "phase breakdown" in out

    def test_json_output_matches_summarize(self, tmp_path, capsys):
        path = self.write_trace(tmp_path)
        assert main(["trace-summary", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        expected = summarize_trace(read_trace(path))
        assert payload == json.loads(json.dumps(expected))

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace-summary", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_jsonl_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "garbage.txt"
        path.write_text("this is not a trace\n")
        assert main(["trace-summary", str(path)]) == 2
        assert "not a JSONL trace" in capsys.readouterr().err


class TestMergeDeterminism:
    def run(self, **overrides):
        options = DartOptions(**dict(SESSION, **overrides))
        return dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                          options)

    def test_serial_equals_jobs2(self):
        serial = self.run(strategy="bfs", jobs=1).stats.summary()
        parallel = self.run(strategy="bfs", jobs=2).stats.summary()
        for key in DETERMINISTIC_KEYS:
            assert serial[key] == parallel[key], key
        assert serial["histograms"]["path_length"] == \
            parallel["histograms"]["path_length"]

    def test_jobs2_is_reproducible(self):
        first = self.run(strategy="bfs", jobs=2).stats.summary()
        second = self.run(strategy="bfs", jobs=2).stats.summary()
        for key in DETERMINISTIC_KEYS:
            assert first[key] == second[key], key
        assert first["histograms"]["path_length"] == \
            second["histograms"]["path_length"]
        # Solver latency varies run to run, but the number of solver
        # queries (observations) must not.
        assert first["histograms"]["solver_latency_s"]["count"] == \
            second["histograms"]["solver_latency_s"]["count"]
