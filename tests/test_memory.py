"""Unit tests for the byte-addressable RAM-machine memory."""

import pytest

from repro.interp.faults import InvalidFree, SegFault, StackOverflow
from repro.interp.memory import Memory, MemoryOptions


@pytest.fixture
def mem():
    return Memory()


class TestAllocation:
    def test_global_allocation_zeroed(self, mem):
        region = mem.alloc_global(8, "g")
        assert mem.read_bytes(region.start, 8) == b"\x00" * 8

    def test_regions_do_not_overlap(self, mem):
        a = mem.alloc_global(5, "a")
        b = mem.alloc_global(5, "b")
        assert a.end <= b.start

    def test_malloc_returns_address(self, mem):
        addr = mem.malloc(16)
        assert addr != 0
        mem.write_int(addr, 7, 4, True)
        assert mem.read_int(addr, 4, True) == 7

    def test_malloc_zero_is_valid_unique(self, mem):
        a = mem.malloc(0)
        b = mem.malloc(0)
        assert a != 0 and b != 0 and a != b

    def test_malloc_respects_heap_limit(self):
        mem = Memory(MemoryOptions(heap_limit=100))
        assert mem.malloc(200) == 0  # NULL on failure

    def test_malloc_negative_returns_null(self, mem):
        assert mem.malloc(-1) == 0

    def test_string_interning(self, mem):
        region = mem.alloc_string(b"hey")
        assert mem.read_bytes(region.start, 4) == b"hey\x00"

    def test_string_region_read_only(self, mem):
        region = mem.alloc_string(b"ro")
        with pytest.raises(SegFault, match="read-only"):
            mem.write_bytes(region.start, b"x")


class TestStackAndAlloca:
    def test_push_pop_frame(self, mem):
        frame = mem.push_frame(64, "f", 1)
        mem.write_int(frame.start, 1, 4, True)
        mem.pop_frame(frame, [])
        with pytest.raises(SegFault, match="dead stack frame"):
            mem.read_int(frame.start, 4, True)

    def test_stack_limit_enforced(self):
        mem = Memory(MemoryOptions(stack_limit=128))
        mem.push_frame(100, "f", 1)
        with pytest.raises(StackOverflow):
            mem.push_frame(100, "g", 2)

    def test_call_depth_enforced(self):
        mem = Memory(MemoryOptions(max_call_depth=3))
        with pytest.raises(StackOverflow):
            mem.push_frame(8, "f", 4)

    def test_alloca_success(self, mem):
        region = mem.alloca(32)
        assert region is not None
        mem.write_bytes(region.start, b"\x01" * 32)

    def test_alloca_returns_none_when_stack_full(self):
        # The oSIP security-bug mechanism: alloca fails, caller gets NULL.
        mem = Memory(MemoryOptions(stack_limit=64))
        assert mem.alloca(1 << 20) is None

    def test_alloca_negative_fails(self, mem):
        assert mem.alloca(-5) is None

    def test_alloca_freed_with_frame(self, mem):
        frame = mem.push_frame(16, "f", 1)
        block = mem.alloca(16)
        mem.pop_frame(frame, [block])
        with pytest.raises(SegFault):
            mem.read_int(block.start, 4, True)

    def test_stack_used_accounting(self):
        mem = Memory(MemoryOptions(stack_limit=1024))
        frame = mem.push_frame(100, "f", 1)
        used = mem.stack_used
        mem.pop_frame(frame, [])
        assert mem.stack_used < used


class TestFree:
    def test_free_then_use_faults(self, mem):
        addr = mem.malloc(8)
        mem.free(addr)
        with pytest.raises(SegFault, match="freed"):
            mem.read_int(addr, 4, True)

    def test_double_free_faults(self, mem):
        addr = mem.malloc(8)
        mem.free(addr)
        with pytest.raises(InvalidFree, match="double"):
            mem.free(addr)

    def test_free_null_is_noop(self, mem):
        mem.free(0)

    def test_free_wild_pointer_faults(self, mem):
        with pytest.raises(InvalidFree):
            mem.free(0x123456)

    def test_free_interior_pointer_faults(self, mem):
        addr = mem.malloc(8)
        with pytest.raises(InvalidFree):
            mem.free(addr + 4)


class TestAccessChecks:
    def test_null_dereference(self, mem):
        with pytest.raises(SegFault, match="NULL"):
            mem.read_int(0, 4, True)

    def test_null_page_offset_reported(self, mem):
        # p->field through NULL p lands at the field offset.
        with pytest.raises(SegFault, match="NULL pointer dereference"):
            mem.read_int(4, 4, True)

    def test_unmapped_address(self, mem):
        with pytest.raises(SegFault, match="unmapped"):
            mem.read_int(0x12345678, 4, True)

    def test_out_of_bounds_past_region(self, mem):
        addr = mem.malloc(4)
        with pytest.raises(SegFault, match="out-of-bounds"):
            mem.read_int(addr + 2, 4, True)

    def test_little_endian_int_roundtrip(self, mem):
        addr = mem.malloc(4)
        mem.write_int(addr, -2, 4, True)
        assert mem.read_bytes(addr, 4) == b"\xfe\xff\xff\xff"
        assert mem.read_int(addr, 4, True) == -2
        assert mem.read_int(addr, 4, False) == 0xFFFFFFFE

    def test_byte_access_within_int(self, mem):
        addr = mem.malloc(4)
        mem.write_int(addr, 0x01020304, 4, False)
        assert mem.read_int(addr + 1, 1, False) == 0x03

    def test_fill_and_copy(self, mem):
        a = mem.malloc(16)
        b = mem.malloc(16)
        mem.fill(a, ord("x"), 16)
        mem.copy(b, a, 16)
        assert mem.read_bytes(b, 16) == b"x" * 16

    def test_copy_to_null_faults(self, mem):
        a = mem.malloc(4)
        with pytest.raises(SegFault):
            mem.copy(0, a, 4)

    def test_string_at(self, mem):
        addr = mem.malloc(8)
        mem.write_bytes(addr, b"hi\x00junk")
        assert mem.string_at(addr) == b"hi"

    def test_string_at_unterminated_faults(self, mem):
        addr = mem.malloc(4)
        mem.write_bytes(addr, b"abcd")
        with pytest.raises(SegFault, match="unterminated"):
            mem.string_at(addr)

    def test_find_region(self, mem):
        addr = mem.malloc(10)
        assert mem.find_region(addr + 5).start == addr
        assert mem.find_region(0x7F000000) is None
