"""Fault detection: the errors DART reports (crashes, aborts, assertions,
division by zero, non-termination, stack overflow, invalid frees)."""

import pytest

from repro.interp import (
    AssertionViolation,
    DivisionByZero,
    InvalidFree,
    Machine,
    MachineOptions,
    NonTermination,
    ProgramAbort,
    SegFault,
    StackOverflow,
)
from repro.interp.faults import InterpreterError
from repro.interp.memory import MemoryOptions
from repro.minic import compile_program


def run(source, function="f", args=(), **opts):
    machine_options = MachineOptions(
        max_steps=opts.pop("max_steps", 100_000),
        memory=MemoryOptions(**opts),
    )
    return Machine(compile_program(source), machine_options).run(
        function, args
    )


class TestAbortAndAssert:
    def test_abort_raises(self):
        with pytest.raises(ProgramAbort):
            run("int f(void) { abort(); }")

    def test_abort_records_location(self):
        with pytest.raises(ProgramAbort) as exc:
            run("int f(void) {\n  abort();\n}")
        assert exc.value.location.line == 2

    def test_assert_violation(self):
        with pytest.raises(AssertionViolation):
            run("int f(int x) { assert(x == 5); return x; }", args=(4,))

    def test_assert_pass_is_silent(self):
        assert run("int f(int x) { assert(x == 5); return x; }",
                   args=(5,)) == 5

    def test_assertion_violation_is_an_abort(self):
        # Note 8 of the paper: an assert violation triggers abort().
        assert issubclass(AssertionViolation, ProgramAbort)

    def test_conditional_abort(self):
        src = "int f(int x) { if (x > 10) abort(); return 0; }"
        assert run(src, args=(10,)) == 0
        with pytest.raises(ProgramAbort):
            run(src, args=(11,))


class TestMemoryFaults:
    def test_null_read(self):
        with pytest.raises(SegFault):
            run("int f(void) { int *p; p = NULL; return *p; }")

    def test_null_write(self):
        with pytest.raises(SegFault):
            run("int f(void) { int *p; p = NULL; *p = 1; return 0; }")

    def test_null_struct_field(self):
        src = """
        struct s { int a; int b; };
        int f(void) { struct s *p; p = NULL; return p->b; }
        """
        with pytest.raises(SegFault, match="NULL"):
            run(src)

    def test_fault_location_attached(self):
        src = "struct s { int a; };\nint f(struct s *p) { return p->a; }"
        with pytest.raises(SegFault) as exc:
            run(src, args=(0,))
        assert exc.value.location is not None
        assert exc.value.location.line == 2

    def test_out_of_bounds_array(self):
        src = "int f(void) { int a[4]; return a[4]; }"
        with pytest.raises(SegFault):
            run(src)

    def test_use_after_free(self):
        src = """
        int f(void) {
          int *p;
          p = (int *) malloc(4);
          free(p);
          return *p;
        }
        """
        with pytest.raises(SegFault, match="freed"):
            run(src)

    def test_double_free(self):
        src = """
        int f(void) {
          int *p;
          p = (int *) malloc(4);
          free(p);
          free(p);
          return 0;
        }
        """
        with pytest.raises(InvalidFree):
            run(src)

    def test_use_after_return(self):
        src = """
        int *escape(void) { int local; local = 5; return &local; }
        int f(void) { int *p; p = escape(); return *p; }
        """
        with pytest.raises(SegFault, match="dead stack frame"):
            run(src)


class TestOtherFaults:
    def test_division_by_zero(self):
        with pytest.raises(DivisionByZero):
            run("int f(int a) { return 10 / a; }", args=(0,))

    def test_modulo_by_zero(self):
        with pytest.raises(DivisionByZero):
            run("int f(int a) { return 10 % a; }", args=(0,))

    def test_non_termination_detected(self):
        src = "int f(void) { while (1) { } return 0; }"
        with pytest.raises(NonTermination):
            run(src, max_steps=5000)

    def test_non_termination_threshold_not_triggered_early(self):
        src = """
        int f(void) { int i; int s; s = 0;
          for (i = 0; i < 100; i++) s = s + i; return s; }
        """
        assert run(src, max_steps=100_000) == 4950

    def test_runaway_recursion_overflows_stack(self):
        src = "int f(int n) { return f(n + 1); }"
        with pytest.raises(StackOverflow):
            run(src, args=(0,), max_call_depth=64)

    def test_alloca_failure_returns_null_no_fault(self):
        src = """
        int f(void) {
          char *p;
          p = (char *) alloca(1000000);
          return p == NULL;
        }
        """
        assert run(src, stack_limit=1024) == 1

    def test_alloca_success_within_limit(self):
        src = """
        int f(void) {
          char *p;
          p = (char *) alloca(64);
          p[0] = 'x';
          return p[0];
        }
        """
        assert run(src, stack_limit=1 << 16) == ord("x")

    def test_calling_external_without_driver_is_harness_error(self):
        src = "int probe(void); int f(void) { return probe(); }"
        with pytest.raises(InterpreterError):
            run(src)
