"""Unit tests for symbolic expressions, symbolic memory and the Fig. 1
evaluator (concrete fallback + completeness flags)."""

import pytest

from repro.symbolic.evaluate import SymbolicEvaluator, constraint_from_branch
from repro.symbolic.expr import (
    CmpExpr,
    EQ,
    GE,
    GT,
    LE,
    LT,
    LinExpr,
    NE,
    PtrExpr,
)
from repro.symbolic.flags import CompletenessFlags
from repro.symbolic.symmem import SymbolicMemory


def lin(coeffs=None, const=0):
    return LinExpr(coeffs or {}, const)


class TestLinExpr:
    def test_constant(self):
        e = LinExpr.constant(5)
        assert e.is_constant() and e.const == 5

    def test_variable(self):
        e = LinExpr.variable(3)
        assert e.coeffs == {3: 1}

    def test_zero_coefficients_dropped(self):
        assert lin({1: 0, 2: 3}).coeffs == {2: 3}

    def test_add_merges(self):
        e = lin({1: 2}, 5).add(lin({1: 3, 2: 1}, -2))
        assert e.coeffs == {1: 5, 2: 1} and e.const == 3

    def test_add_cancels_to_constant(self):
        e = lin({1: 2}).add(lin({1: -2}, 7))
        assert e.is_constant() and e.const == 7

    def test_sub(self):
        e = lin({1: 5}, 1).sub(lin({1: 2, 2: 2}, 4))
        assert e.coeffs == {1: 3, 2: -2} and e.const == -3

    def test_scale(self):
        e = lin({1: 2}, 3).scale(-2)
        assert e.coeffs == {1: -4} and e.const == -6

    def test_scale_by_zero(self):
        assert lin({1: 9}, 9).scale(0) == LinExpr.constant(0)

    def test_evaluate(self):
        assert lin({1: 2, 2: -1}, 10).evaluate({1: 3, 2: 4}) == 12

    def test_equality_and_hash(self):
        assert lin({1: 1}, 2) == lin({1: 1}, 2)
        assert hash(lin({1: 1}, 2)) == hash(lin({1: 1}, 2))
        assert lin({1: 1}, 2) != lin({1: 1}, 3)


class TestCmpExpr:
    def test_negation_pairs(self):
        pairs = [(EQ, NE), (LT, GE), (LE, GT)]
        for op, neg in pairs:
            e = CmpExpr(op, lin({1: 1}))
            assert e.negate().op == neg
            assert e.negate().negate().op == op

    def test_evaluate_each_op(self):
        e = lin({1: 1}, -5)  # x - 5
        model_eq = {1: 5}
        model_lt = {1: 4}
        assert CmpExpr(EQ, e).evaluate(model_eq)
        assert CmpExpr(LE, e).evaluate(model_eq)
        assert CmpExpr(GE, e).evaluate(model_eq)
        assert not CmpExpr(NE, e).evaluate(model_eq)
        assert CmpExpr(LT, e).evaluate(model_lt)
        assert not CmpExpr(GT, e).evaluate(model_lt)

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            CmpExpr("<>", lin())

    def test_ptr_null_test(self):
        p = PtrExpr(7)
        null = p.null_test(True)
        assert null.op == EQ and null.lin.coeffs == {7: 1}
        assert p.null_test(False).op == NE


class TestSymbolicMemory:
    def test_exact_read_write(self):
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        assert s.read(100, 4) == lin({0: 1})

    def test_wrong_size_read_is_none(self):
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        assert s.read(100, 1) is None

    def test_concrete_write_invalidates(self):
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        s.write(100, 4, None)
        assert s.read(100, 4) is None

    def test_partial_overlap_invalidates(self):
        # The Section 2.5 aliasing case: a 1-byte write into a symbolic int.
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        s.write(102, 1, None)
        assert s.read(100, 4) is None

    def test_adjacent_write_preserved(self):
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        s.write(104, 4, None)
        assert s.read(100, 4) == lin({0: 1})

    def test_copy_range_moves_contained_entries(self):
        s = SymbolicMemory()
        s.write(100, 4, lin({0: 1}))
        s.write(104, 4, lin({1: 1}))
        s.copy_range(100, 200, 8)
        assert s.read(200, 4) == lin({0: 1})
        assert s.read(204, 4) == lin({1: 1})

    def test_copy_range_invalidates_destination_first(self):
        s = SymbolicMemory()
        s.write(200, 4, lin({5: 1}))
        s.copy_range(100, 200, 8)  # source has no entries
        assert s.read(200, 4) is None

    def test_variables_reported(self):
        s = SymbolicMemory()
        s.write(0, 4, lin({3: 1}))
        s.write(8, 4, CmpExpr(EQ, lin({4: 1})))
        assert s.variables() == {3, 4}


class TestEvaluatorFig1:
    def setup_method(self):
        self.flags = CompletenessFlags()
        self.ev = SymbolicEvaluator(self.flags)

    def test_concrete_plus_concrete_stays_concrete(self):
        assert self.ev.add(1, None, 2, None) is None
        assert self.flags.all_linear  # no information was lost

    def test_symbolic_plus_concrete(self):
        result = self.ev.add(5, lin({0: 1}), 3, None)
        assert result == lin({0: 1}, 3)

    def test_symbolic_plus_symbolic(self):
        result = self.ev.add(0, lin({0: 1}), 0, lin({1: 2}))
        assert result == lin({0: 1, 1: 2})

    def test_mul_by_constant_scales(self):
        # The paper's f(x) = 2 * x stays linear.
        result = self.ev.mul(2, None, 7, lin({0: 1}))
        assert result == lin({0: 2})

    def test_mul_symbolic_by_symbolic_clears_all_linear(self):
        result = self.ev.mul(3, lin({0: 1}), 4, lin({1: 1}))
        assert result is None
        assert not self.flags.all_linear

    def test_division_with_symbolic_clears_flag(self):
        assert self.ev.nonlinear(lin({0: 1}), None) is None
        assert not self.flags.all_linear

    def test_division_concrete_keeps_flag(self):
        assert self.ev.nonlinear(None, None) is None
        assert self.flags.all_linear

    def test_shift_left_by_constant_is_linear(self):
        result = self.ev.shift_left(5, lin({0: 1}), 3, None)
        assert result == lin({0: 8})
        assert self.flags.all_linear

    def test_shift_by_symbolic_clears_flag(self):
        assert self.ev.shift_left(1, None, 2, lin({0: 1})) is None
        assert not self.flags.all_linear

    def test_compare_builds_difference(self):
        result = self.ev.compare(LT, 1, lin({0: 1}), 10, None)
        assert result == CmpExpr(LT, lin({0: 1}, -10))

    def test_compare_concrete_silent(self):
        assert self.ev.compare(EQ, 1, None, 1, None) is None
        assert self.flags.all_linear

    def test_pointer_null_comparison(self):
        result = self.ev.compare(EQ, 1234, PtrExpr(2), 0, None)
        assert result == CmpExpr(EQ, lin({2: 1}))
        assert self.flags.all_linear

    def test_pointer_null_comparison_mirrored(self):
        result = self.ev.compare(NE, 0, None, 1234, PtrExpr(2))
        assert result == CmpExpr(NE, lin({2: 1}))

    def test_pointer_vs_pointer_falls_back(self):
        assert self.ev.compare(EQ, 1, PtrExpr(1), 2, PtrExpr(2)) is None
        assert not self.flags.all_linear

    def test_logical_not_of_comparison(self):
        result = self.ev.logical_not(1, CmpExpr(EQ, lin({0: 1})))
        assert result == CmpExpr(NE, lin({0: 1}))

    def test_logical_not_of_linear(self):
        result = self.ev.logical_not(5, lin({0: 1}))
        assert result == CmpExpr(EQ, lin({0: 1}))

    def test_cast_preserving_value_keeps_symbolic(self):
        result = self.ev.cast_int(5, 5, lin({0: 1}))
        assert result == lin({0: 1})
        assert self.flags.all_linear

    def test_cast_changing_value_clears_flag(self):
        assert self.ev.cast_int(300, 44, lin({0: 1})) is None
        assert not self.flags.all_linear

    def test_neg(self):
        assert self.ev.neg(1, lin({0: 1}, 2)) == lin({0: -1}, -2)


class TestConstraintFromBranch:
    def test_none_stays_none(self):
        assert constraint_from_branch(None, True) is None

    def test_comparison_taken(self):
        c = CmpExpr(EQ, lin({0: 1}))
        assert constraint_from_branch(c, True) == c
        assert constraint_from_branch(c, False) == c.negate()

    def test_linear_truthiness(self):
        e = lin({0: 1}, -3)
        assert constraint_from_branch(e, True) == CmpExpr(NE, e)
        assert constraint_from_branch(e, False) == CmpExpr(EQ, e)

    def test_pointer_truthiness(self):
        p = PtrExpr(4)
        taken = constraint_from_branch(p, True)
        assert taken.op == NE  # non-null pointer is truthy


class TestFlags:
    def test_initial_state(self):
        flags = CompletenessFlags()
        assert flags.complete and flags.forcing_ok

    def test_clear_and_reset(self):
        flags = CompletenessFlags()
        flags.clear_linear()
        assert not flags.complete
        flags.reset()
        assert flags.complete

    def test_snapshot(self):
        flags = CompletenessFlags()
        flags.clear_locs()
        assert flags.snapshot() == (True, False, True, True)

    def test_clear_faithful(self):
        flags = CompletenessFlags()
        flags.clear_faithful()
        assert not flags.complete
        assert flags.snapshot() == (True, True, True, False)
