"""Branch-selection strategies (footnote 4) and the optional extensions:
directed pointer coins, bounded random_init, transparent memory."""

import pytest

from repro import DartOptions, dart_check, random_check
from repro.programs import samples
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
    def test_all_strategies_find_the_h_bug(self, strategy):
        result = dart_check(samples.H_SOURCE, "h",
                            strategy=strategy, max_iterations=100, seed=0)
        assert result.status == "bug_found", strategy

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
    def test_all_strategies_prove_clean_program(self, strategy):
        result = dart_check(samples.Z_SOURCE, "f",
                            strategy=strategy, max_iterations=100, seed=0)
        assert result.status == "complete", strategy

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
    def test_same_path_set_regardless_of_strategy(self, strategy):
        result = dart_check(AC_CONTROLLER_SOURCE, "ac_controller",
                            strategy=strategy, depth=1,
                            max_iterations=200, seed=0)
        assert result.status == "complete"
        assert len(result.stats.distinct_paths) == 5

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            DartOptions(strategy="depth-charge")


class TestPointerCoinModes:
    SOURCE = """
    struct box { int v; };
    int f(struct box *b) {
      if (b == NULL) return -1;
      if (b->v == 123456) abort();
      return b->v;
    }
    """

    def test_directed_coins_systematically_reach_both_shapes(self):
        result = dart_check(self.SOURCE, "f", max_iterations=50, seed=0)
        assert result.status == "bug_found"
        # Coin solved to 1 (allocate) and v solved to the magic value.
        assert result.first_error().inputs[0] == 1
        assert result.first_error().inputs[1] == 123456

    def test_paper_mode_still_finds_it_via_restarts(self):
        options = DartOptions(max_iterations=200, seed=0,
                              directed_pointer_choices=False)
        result = dart_check(self.SOURCE, "f", options)
        assert result.status == "bug_found"

    def test_paper_mode_never_claims_completeness(self):
        clean = """
        struct box { int v; };
        int f(struct box *b) { if (b == NULL) return -1; return b->v; }
        """
        options = DartOptions(max_iterations=60, seed=0,
                              directed_pointer_choices=False)
        result = dart_check(clean, "f", options)
        assert result.status == "exhausted"  # coins are untracked inputs

    def test_directed_mode_claims_completeness_on_clean_program(self):
        clean = """
        struct box { int v; };
        int f(struct box *b) { if (b == NULL) return -1; return b->v; }
        """
        result = dart_check(clean, "f", max_iterations=60, seed=0)
        assert result.status == "complete"


class TestBoundedInitDepth:
    LIST_SOURCE = """
    struct node { int value; struct node *next; };
    int sum3(struct node *head) {
      int total; int hops;
      total = 0; hops = 0;
      while (head != NULL && hops < 3) {
        total = total + head->value;
        head = head->next;
        hops = hops + 1;
      }
      return total;
    }
    """

    def test_bounded_search_completes(self):
        options = DartOptions(max_iterations=2000, seed=0,
                              max_init_depth=3)
        result = dart_check(self.LIST_SOURCE, "sum3", options)
        assert result.status == "complete"

    def test_unbounded_search_keeps_growing_lists(self):
        # Without the bound, directed coins keep extending the list; the
        # search must not claim completeness within a small budget.
        options = DartOptions(max_iterations=30, seed=0)
        result = dart_check(self.LIST_SOURCE, "sum3", options)
        assert result.status == "exhausted"

    def test_bound_reachable_condition_deep_in_list(self):
        source = """
        struct node { int value; struct node *next; };
        int probe(struct node *head) {
          if (head != NULL)
            if (head->next != NULL)
              if (head->next->value == 777)
                abort();
          return 0;
        }
        """
        options = DartOptions(max_iterations=500, seed=0, max_init_depth=4)
        result = dart_check(source, "probe", options)
        assert result.status == "bug_found"


class TestTransparentMemory:
    SOURCE = """
    int f(int x) {
      int copy;
      memcpy(&copy, &x, sizeof(int));
      if (copy == 424242) abort();
      return copy;
    }
    """

    def test_opaque_memcpy_loses_symbolic_value(self):
        # Paper behaviour: library functions are black boxes, so the
        # constraint after memcpy is gone and the bug needs luck.
        result = dart_check(self.SOURCE, "f", max_iterations=60, seed=0)
        assert not result.found_error
        all_linear = result.flags[0]
        assert not all_linear  # honesty: completeness was lost

    def test_transparent_memcpy_keeps_symbolic_value(self):
        options = DartOptions(max_iterations=60, seed=0,
                              transparent_memory=True)
        result = dart_check(self.SOURCE, "f", options)
        assert result.status == "bug_found"
        assert result.first_error().inputs[0] == 424242


class TestErrorCollection:
    MULTI_BUG = """
    int f(int x) {
      if (x == 1) abort();
      if (x == 2) { int *p; p = NULL; *p = 1; }
      if (x == 3) { int z; z = 0; return 10 / z; }
      return 0;
    }
    """

    def test_stop_on_first_error_returns_one(self):
        result = dart_check(self.MULTI_BUG, "f",
                            max_iterations=100, seed=0)
        assert len(result.errors) == 1

    def test_collect_mode_finds_all_distinct_errors(self):
        options = DartOptions(max_iterations=200, seed=0,
                              stop_on_first_error=False)
        result = dart_check(self.MULTI_BUG, "f", options)
        kinds = sorted(e.kind for e in result.errors)
        assert kinds == ["abort", "division by zero", "segmentation fault"]

    def test_collect_mode_deduplicates_by_site(self):
        options = DartOptions(max_iterations=300, seed=0,
                              stop_on_first_error=False)
        result = dart_check(
            "int f(int x) { if (x > 0) abort(); return 0; }", "f", options
        )
        assert len(result.errors) == 1


class TestRandomBaseline:
    def test_random_finds_shallow_bugs(self):
        source = "int f(int x) { if (x > 0) abort(); return 0; }"
        result = random_check(source, "f", max_iterations=100, seed=0)
        assert result.found_error

    def test_random_never_claims_completeness(self):
        result = random_check(samples.Z_SOURCE, "f",
                              max_iterations=20, seed=0)
        assert result.status == "exhausted"

    def test_random_respects_iteration_budget(self):
        result = random_check(samples.Z_SOURCE, "f",
                              max_iterations=17, seed=0)
        assert result.iterations == 17

    def test_random_deterministic_per_seed(self):
        source = "int f(int x) { if (x % 100 == 0) abort(); return 0; }"
        a = random_check(source, "f", max_iterations=500, seed=9)
        b = random_check(source, "f", max_iterations=500, seed=9)
        assert a.found_error == b.found_error
        assert a.iterations == b.iterations


class TestOptionsValidation:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            DartOptions(depth=0)

    def test_check_rejects_options_plus_kwargs(self):
        with pytest.raises(ValueError):
            dart_check(samples.Z_SOURCE, "f", DartOptions(), seed=1)

    def test_time_limit_stops_session(self):
        source = """
        int f(int x) { if (x * x == 7) abort(); return 0; }
        """
        result = dart_check(source, "f", max_iterations=10**9,
                            time_limit=0.5)
        assert result.status == "exhausted"
        assert result.stats.elapsed < 5
