"""Tests for the captured printf implementation."""

import pytest

from repro.interp import Machine
from repro.minic import compile_program


def output_of(source, function="f", args=()):
    machine = Machine(compile_program(source))
    machine.run(function, args)
    return machine.output


class TestPrintf:
    def test_plain_text(self):
        out = output_of('int f(void) { printf("hello"); return 0; }')
        assert out == [b"hello"]

    def test_decimal(self):
        out = output_of(
            'int f(void) { printf("v=%d!", -42); return 0; }'
        )
        assert out == [b"v=-42!"]

    def test_unsigned_and_hex(self):
        out = output_of(
            'int f(void) { printf("%u %x", -1, 255); return 0; }'
        )
        assert out == [b"4294967295 ff"]

    def test_char_and_string(self):
        out = output_of(
            'int f(void) { printf("%c %s", 65, "world"); return 0; }'
        )
        assert out == [b"A world"]

    def test_percent_escape(self):
        out = output_of('int f(void) { printf("100%%"); return 0; }')
        assert out == [b"100%"]

    def test_multiple_calls_accumulate(self):
        out = output_of(
            'int f(void) { printf("a"); printf("b%d", 1); return 0; }'
        )
        assert out == [b"a", b"b1"]

    def test_missing_argument_kept_literal(self):
        out = output_of('int f(void) { printf("x=%d"); return 0; }')
        assert out == [b"x=%d"]

    def test_return_value_is_length(self):
        source = 'int f(void) { return printf("abc%d", 7); }'
        machine = Machine(compile_program(source))
        assert machine.run("f", ()) == 4

    def test_computed_values(self):
        out = output_of(
            """
            int f(int n) {
              printf("double(%d) = %d", n, n * 2);
              return 0;
            }
            """,
            args=(21,),
        )
        assert out == [b"double(21) = 42"]
