"""v2 session checkpoints: integrity, provenance, and exact resumption."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro import DartOptions
from repro.dart import persist
from repro.dart.report import CHECKPOINT_CORRUPT
from repro.dart.runner import Dart
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def stats_key(result):
    """Everything a resumed session must reproduce exactly (not time)."""
    stats = result.stats
    return {
        "status": result.status,
        "iterations": stats.iterations,
        "paths": stats.paths_explored,
        "distinct_paths": sorted(stats.distinct_paths),
        "solver_calls": stats.solver_calls,
        "solver_sat": stats.solver_sat,
        "solver_unsat": stats.solver_unsat,
        "solver_unknown": stats.solver_unknown,
        "forcing_failures": stats.forcing_failures,
        "random_restarts": stats.random_restarts,
        "covered": sorted(stats.covered_branches),
        "errors": [(e.kind, str(e.location), tuple(e.inputs))
                   for e in result.errors],
    }


class TestGenerationalResume:
    @pytest.mark.parametrize("strategy", ["bfs", "random"])
    def test_resumed_session_matches_uninterrupted_run(
        self, tmp_path, strategy
    ):
        options = dict(strategy=strategy, seed=3, stop_on_first_error=False)
        uninterrupted = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=400, **options),
        ).run()
        assert uninterrupted.status == "complete"

        path = str(tmp_path / "gen-state.json")
        killed = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=3, state_file=path, **options),
        ).run()
        assert killed.status == "exhausted"
        assert os.path.exists(path)

        resumed = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=400, state_file=path, **options),
        ).run()
        assert resumed.resumed
        assert stats_key(resumed) == stats_key(uninterrupted)
        assert not os.path.exists(path)  # cleared on clean termination

    def test_dfs_resume_matches_uninterrupted_run(self, tmp_path):
        uninterrupted = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=400, seed=0,
                        stop_on_first_error=False),
        ).run()
        path = str(tmp_path / "dfs-state.json")
        Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=2, seed=0, state_file=path,
                        stop_on_first_error=False),
        ).run()
        resumed = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(max_iterations=400, seed=0, state_file=path,
                        stop_on_first_error=False),
        ).run()
        assert resumed.resumed
        assert stats_key(resumed) == stats_key(uninterrupted)

    def test_periodic_autosave_writes_checkpoints(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "autosave.json")
        saves = []
        original = persist.save_checkpoint

        def counting(save_path, checkpoint):
            saves.append(checkpoint.counters["iterations"])
            return original(save_path, checkpoint)

        monkeypatch.setattr(persist, "save_checkpoint", counting)
        Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(strategy="bfs", seed=0, max_iterations=3,
                        state_file=path, checkpoint_every=2),
        ).run()
        # Autosave at the 2-run boundary, plus the budget-exhaustion
        # checkpoint at 3.
        assert saves == [2, 3]
        assert os.path.exists(path)


class TestCheckpointRejection:
    def run_once(self, source, path, **overrides):
        options = dict(strategy="bfs", seed=1, max_iterations=4,
                       state_file=path)
        options.update(overrides)
        return Dart(source, "ac_controller", DartOptions(**options)).run()

    def test_checkpoint_from_different_program_is_rejected(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path)
        assert os.path.exists(path)
        # Same toplevel name, different source text.
        other_source = AC_CONTROLLER_SOURCE + "\n/* patched */\n"
        resumed = self.run_once(other_source, path, max_iterations=400)
        assert not resumed.resumed  # restarted cleanly from scratch
        assert resumed.status == "complete"

    def test_checkpoint_from_different_options_is_rejected(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path, seed=1)
        resumed = self.run_once(AC_CONTROLLER_SOURCE, path, seed=2,
                                max_iterations=400)
        assert not resumed.resumed

    def test_checkpoint_from_different_engine_is_rejected(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path, strategy="bfs")
        resumed = self.run_once(AC_CONTROLLER_SOURCE, path, strategy="dfs",
                                max_iterations=400)
        # dfs and bfs have different option digests, so the fingerprint
        # already rejects it; the engine tag is belt and braces.
        assert not resumed.resumed

    def test_checkpoint_from_old_constraint_encoding_is_rejected(
        self, tmp_path
    ):
        """Migration: a checkpoint written before the machine-integer
        widening encoding (fingerprint without the ``encoding`` field, or
        with an older generation) carries ``done`` verdicts decided under
        ideal-integer conjuncts.  Resuming must reject it and re-solve
        from scratch rather than trust stale decisions."""
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path)
        payload = json.load(open(path))
        assert payload["body"]["fingerprint"]["encoding"] == 3
        fingerprint = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(strategy="bfs", seed=1),
        ).fingerprint

        def rewrite(mutate):
            # Recompute the checksum so the encoding generation is the
            # *only* thing wrong with the file.
            stale = json.loads(json.dumps(payload))
            mutate(stale["body"]["fingerprint"])
            stale["checksum"] = persist._body_checksum(stale["body"])
            with open(path, "w") as handle:
                json.dump(stale, handle)

        # A v1-encoding session stamped encoding=1.
        rewrite(lambda fp: fp.__setitem__("encoding", 1))
        assert persist.load_checkpoint(path, fingerprint) is None
        # A v2-encoding session (pre-UNSAT-core canonical keys).
        rewrite(lambda fp: fp.__setitem__("encoding", 2))
        assert persist.load_checkpoint(path, fingerprint) is None
        # A pre-versioning session had no encoding field at all.
        rewrite(lambda fp: fp.__delitem__("encoding"))
        assert persist.load_checkpoint(path, fingerprint) is None
        resumed = self.run_once(AC_CONTROLLER_SOURCE, path,
                                max_iterations=400)
        assert not resumed.resumed  # restarted: branches re-solved
        assert resumed.status == "complete"

    def assert_degraded_reseed(self, resumed):
        """A corrupt (exists-but-invalid) checkpoint must reseed from
        scratch AND degrade: lost progress means the session can no
        longer certify completeness, and the damage is quarantined as
        evidence rather than silently swallowed."""
        assert not resumed.resumed
        assert resumed.status == "exhausted"  # never COMPLETE after loss
        assert resumed.stats.checkpoints_rejected == 1
        records = [record for record in resumed.quarantined
                   if record.classification == CHECKPOINT_CORRUPT]
        assert len(records) == 1
        assert "reseeding" in records[0].detail

    def test_corrupted_checkpoint_is_rejected(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path)
        payload = json.load(open(path))
        payload["body"]["counters"]["iterations"] += 1  # bit rot
        with open(path, "w") as handle:
            json.dump(payload, handle)
        fingerprint = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(strategy="bfs", seed=1),
        ).fingerprint
        assert persist.load_checkpoint(path, fingerprint) is None
        self.assert_degraded_reseed(
            self.run_once(AC_CONTROLLER_SOURCE, path, max_iterations=400))

    def test_truncated_checkpoint_is_rejected(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path)
        data = open(path).read()
        with open(path, "w") as handle:
            handle.write(data[: len(data) // 2])  # torn write
        self.assert_degraded_reseed(
            self.run_once(AC_CONTROLLER_SOURCE, path, max_iterations=400))

    def test_load_checkpoint_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.json")
        self.run_once(AC_CONTROLLER_SOURCE, path)
        fingerprint = Dart(
            AC_CONTROLLER_SOURCE, "ac_controller",
            DartOptions(strategy="bfs", seed=1),
        ).fingerprint
        checkpoint = persist.load_checkpoint(path, fingerprint)
        assert checkpoint is not None
        assert checkpoint.engine == "generational"
        assert checkpoint.counters["iterations"] == 4
        assert checkpoint.worklist  # mid-drain frontier preserved
        mismatched = dict(fingerprint, toplevel="someone_else")
        assert persist.load_checkpoint(path, mismatched) is None


#: A search space big enough that the CLI session is still running when
#: the test delivers a signal: 9^3 = 729 feasible paths, and the concrete
#: warm-up loop makes each run cost tens of milliseconds.
SLOW_SEARCH_SOURCE = """
int f(int a, int b, int c) {
  int n;
  int i;
  n = 0;
  i = 0;
  while (i < 30000)
    i = i + 1;
  if (a == 1) n = n + 1;
  if (a == 2) n = n + 1;
  if (a == 3) n = n + 1;
  if (a == 4) n = n + 1;
  if (a == 5) n = n + 1;
  if (a == 6) n = n + 1;
  if (a == 7) n = n + 1;
  if (a == 8) n = n + 1;
  if (b == 1) n = n + 1;
  if (b == 2) n = n + 1;
  if (b == 3) n = n + 1;
  if (b == 4) n = n + 1;
  if (b == 5) n = n + 1;
  if (b == 6) n = n + 1;
  if (b == 7) n = n + 1;
  if (b == 8) n = n + 1;
  if (c == 1) n = n + 1;
  if (c == 2) n = n + 1;
  if (c == 3) n = n + 1;
  if (c == 4) n = n + 1;
  if (c == 5) n = n + 1;
  if (c == 6) n = n + 1;
  if (c == 7) n = n + 1;
  if (c == 8) n = n + 1;
  return n;
}
"""


class TestGracefulSignals:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_signal_checkpoints_and_resumes(self, tmp_path, signum):
        program = tmp_path / "slow.c"
        program.write_text(SLOW_SEARCH_SOURCE)
        state = str(tmp_path / "state.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", str(program), "f",
             "--state-file", state, "--time-limit", "120",
             "--max-iterations", "1000000"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        time.sleep(2.0)  # let the session get going
        proc.send_signal(signum)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 130, (out, err)
        assert "Interrupted" in out
        assert "checkpoint saved" in out
        assert os.path.exists(state)

        # The checkpoint resumes in-process with the same configuration.
        probe = Dart(SLOW_SEARCH_SOURCE, "f",
                     DartOptions(state_file=state), filename=str(program))
        checkpoint = persist.load_checkpoint(state, probe.fingerprint)
        assert checkpoint is not None
        done = checkpoint.counters["iterations"]
        assert done > 0
        resumed = Dart(
            SLOW_SEARCH_SOURCE, "f",
            DartOptions(state_file=state, max_iterations=done + 20),
            filename=str(program),
        ).run()
        assert resumed.resumed
        assert resumed.iterations == done + 20  # continued, not restarted
