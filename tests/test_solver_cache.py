"""Solver result cache: canonical keys, lookup tiers, bounds, counters."""

from repro import DartOptions, dart_check
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.solver import SAT, SolverResultCache, UNSAT
from repro.solver.cache import EXACT, MODEL_REUSE, UNSAT_SUPERSET
from repro.solver.core import SolverResult
from repro.symbolic.expr import CmpExpr, EQ, GE, GT, LE, LinExpr


def cmp(op, coeffs, const=0):
    return CmpExpr(op, LinExpr(coeffs, const))


class TestCanonicalKeys:
    """Satellite: stable canonical identity for LinExpr/CmpExpr."""

    def test_linexpr_key_is_insertion_order_independent(self):
        a = LinExpr({0: 1, 1: 2}, 3)
        b = LinExpr({1: 2, 0: 1}, 3)
        assert a.key() == b.key()
        assert a == b
        assert hash(a) == hash(b)

    def test_linexpr_zero_coefficients_are_normalized_away(self):
        assert LinExpr({0: 1, 1: 0}, 2) == LinExpr({0: 1}, 2)

    def test_linexpr_inequality(self):
        assert LinExpr({0: 1}, 2) != LinExpr({0: 1}, 3)
        assert LinExpr({0: 1}) != LinExpr({1: 1})
        assert LinExpr({0: 1}) != "not an expression"

    def test_cmpexpr_equality_and_key(self):
        a = cmp(GE, {0: 1, 2: -3}, 7)
        b = cmp(GE, {2: -3, 0: 1}, 7)
        assert a == b and hash(a) == hash(b) and a.key() == b.key()
        assert a != cmp(LE, {0: 1, 2: -3}, 7)  # same lin, different op
        assert a != "not an expression"

    def test_keys_usable_as_dict_keys(self):
        table = {cmp(EQ, {0: 1}).key(): "x0 == 0"}
        assert table[cmp(EQ, {0: 1}).key()] == "x0 == 0"

    def test_derived_expressions_get_fresh_keys(self):
        base = LinExpr({0: 1}, 1)
        base.key()  # populate the cache on the parent
        assert base.add_const(1).key() == (((0, 1),), 2)
        assert base.negate().key() == (((0, -1),), -1)

    def test_query_key_embeds_the_encoding_version(self):
        # The leading version field makes keys from different constraint
        # encodings disjoint: a persisted or shared cache entry from the
        # v1 ideal-integer encoding can never answer a v2 query.
        from repro.solver.cache import ENCODING_VERSION

        key = SolverResultCache.query_key([cmp(EQ, {0: 1})], {})
        assert key[0] == ENCODING_VERSION == 3

    def test_strict_ops_normalize_in_cache_keys_only(self):
        strict = cmp(GT, {0: 1}, 5)           # x0 + 5 > 0
        nonstrict = cmp(GE, {0: 1}, 4)        # x0 + 4 >= 0
        assert strict.key() != nonstrict.key()  # expression identity kept
        assert SolverResultCache.canonical_cmp_key(strict) == \
            SolverResultCache.canonical_cmp_key(nonstrict)
        assert SolverResultCache.query_key([strict], {}) == \
            SolverResultCache.query_key([nonstrict], {})


class TestExactTier:
    def test_hit_after_store(self):
        cache = SolverResultCache()
        cons = [cmp(EQ, {0: 1}, -5)]
        cache.store(cons, {}, SolverResult(SAT, {0: 5}))
        result, tier = cache.lookup(cons, {})
        assert tier == EXACT
        assert result.is_sat and result.model == {0: 5}

    def test_key_ignores_conjunct_order(self):
        cache = SolverResultCache()
        a, b = cmp(GT, {0: 1}), cmp(EQ, {1: 1}, -2)
        cache.store([a, b], {}, SolverResult(SAT, {0: 1, 1: 2}))
        result, tier = cache.lookup([b, a], {})
        assert tier == EXACT and result.is_sat

    def test_domains_distinguish_queries(self):
        # The same constraint under a narrower domain is a different
        # query: x0 >= 5 is SAT in int32 but UNSAT in [0, 3].
        cache = SolverResultCache()
        cons = [cmp(GE, {0: 1}, -5)]
        cache.store(cons, {}, SolverResult(SAT, {0: 5}))
        assert cache.lookup(cons, {0: (0, 3)}) is None

    def test_irrelevant_domains_do_not_distinguish(self):
        # Domains of variables the query never mentions are no part of
        # its identity.
        cache = SolverResultCache()
        cons = [cmp(EQ, {0: 1})]
        cache.store(cons, {9: (0, 1)}, SolverResult(SAT, {0: 0}))
        result, tier = cache.lookup(cons, {7: (2, 3)})
        assert tier == EXACT and result.is_sat

    def test_unknown_is_never_cached(self):
        cache = SolverResultCache()
        cons = [cmp(EQ, {0: 1})]
        cache.store(cons, {}, SolverResult("unknown"))
        assert cache.lookup(cons, {}) is None
        assert len(cache) == 0


class TestUnsatSupersetTier:
    def test_superset_of_unsat_core_is_unsat(self):
        cache = SolverResultCache()
        core = [cmp(EQ, {0: 1}), cmp(EQ, {0: 1}, -1)]  # x0==0 and x0==1
        cache.store(core, {}, SolverResult(UNSAT))
        query = core + [cmp(GT, {1: 1})]
        result, tier = cache.lookup(query, {})
        assert tier == UNSAT_SUPERSET
        assert result.status == "unsat"

    def test_subset_is_not_refuted(self):
        cache = SolverResultCache()
        core = [cmp(EQ, {0: 1}), cmp(EQ, {0: 1}, -1)]
        cache.store(core, {}, SolverResult(UNSAT))
        assert cache.lookup(core[:1], {}) is None

    def test_narrower_query_domain_still_unsat(self):
        # Refuted in int32 -> refuted in any narrower domain.
        cache = SolverResultCache()
        core = [cmp(EQ, {0: 1}), cmp(EQ, {0: 1}, -1)]
        cache.store(core, {}, SolverResult(UNSAT))
        result, tier = cache.lookup(core + [cmp(LE, {1: 1})],
                                    {0: (0, 10)})
        assert tier == UNSAT_SUPERSET and result.status == "unsat"

    def test_wider_query_domain_not_shortcut(self):
        # UNSAT proved under [0, 3] says nothing about int32.
        cache = SolverResultCache()
        cons = [cmp(GE, {0: 1}, -5)]  # x0 >= 5
        cache.store(cons, {0: (0, 3)}, SolverResult(UNSAT))
        assert cache.lookup(cons + [cmp(GE, {1: 1})], {}) is None


class TestModelReuseTier:
    def test_cached_model_answers_a_new_satisfied_query(self):
        cache = SolverResultCache()
        cache.store([cmp(EQ, {0: 1}, -5)], {}, SolverResult(SAT, {0: 5}))
        result, tier = cache.lookup([cmp(GT, {0: 1})], {})  # x0 > 0
        assert tier == MODEL_REUSE
        assert result.is_sat and result.model == {0: 5}

    def test_model_not_reused_when_it_violates_the_query(self):
        cache = SolverResultCache()
        cache.store([cmp(EQ, {0: 1}, -5)], {}, SolverResult(SAT, {0: 5}))
        assert cache.lookup([cmp(EQ, {0: 1}, -7)], {}) is None

    def test_model_must_assign_every_query_variable(self):
        cache = SolverResultCache()
        cache.store([cmp(EQ, {0: 1}, -5)], {}, SolverResult(SAT, {0: 5}))
        # Query also involves x1, which the cached model never assigned.
        assert cache.lookup([cmp(GT, {0: 1}), cmp(GT, {1: 1})], {}) is None

    def test_model_must_respect_query_domains(self):
        cache = SolverResultCache()
        cache.store([cmp(EQ, {0: 1}, -5)], {}, SolverResult(SAT, {0: 5}))
        assert cache.lookup([cmp(GT, {0: 1})], {0: (1, 3)}) is None

    def test_reused_model_is_restricted_to_query_variables(self):
        # A fuller model must not leak assignments for variables the
        # query never mentions (they would clobber unrelated IM slots on
        # the IM + IM' merge).
        cache = SolverResultCache()
        cache.store(
            [cmp(EQ, {0: 1}, -5), cmp(EQ, {1: 1}, -9)], {},
            SolverResult(SAT, {0: 5, 1: 9}),
        )
        result, tier = cache.lookup([cmp(GT, {0: 1})], {})
        assert tier == MODEL_REUSE
        assert result.model == {0: 5}


class TestBounds:
    def test_exact_results_are_lru_bounded(self):
        cache = SolverResultCache(max_results=4)
        for i in range(10):
            cache.store([cmp(EQ, {0: 1}, -i)], {}, SolverResult(UNSAT)
                        if i % 2 else SolverResult(SAT, {0: i}))
        assert len(cache) == 4

    def test_model_store_bounded(self):
        cache = SolverResultCache(max_models=2)
        for i in range(5):
            cache.store([cmp(EQ, {0: 1}, -i)], {}, SolverResult(SAT, {0: i}))
        assert len(cache._models) == 2


class TestEndToEndCounters:
    def test_cache_counters_populated_and_calls_reduced(self):
        def stats_for(cache_on):
            options = DartOptions(
                depth=2, max_iterations=1000, seed=0,
                stop_on_first_error=False, solver_cache=cache_on,
            )
            return dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                              options).stats

        cold = stats_for(False)
        warm = stats_for(True)
        assert cold.cache_answered == 0 and cold.cache_misses == 0
        assert warm.cache_answered > 0
        assert warm.cache_misses == warm.solver_calls
        assert warm.solver_calls < cold.solver_calls
        assert 0.0 < warm.cache_hit_rate <= 1.0
        summary = warm.summary()
        for key in ("cache_hits", "cache_unsat_shortcuts",
                    "cache_model_reuses", "cache_misses", "cache_hit_rate",
                    "avg_constraints_per_call", "sliced_conjuncts_dropped"):
            assert key in summary
