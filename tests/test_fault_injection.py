"""The deterministic fault-injection layer (repro.faults).

Covers the plan algebra (parse/spec round-trips, seeded determinism,
validation), the zero-overhead-when-disabled pin, and — for every fault
site — that the stack *contains* the injected failure: the session never
crashes, the right funnel counter moves, and recovery preserves the
error set the clean session reports.
"""

import glob
import json
import os

import pytest

from repro import DartOptions
from repro.dart import persist
from repro.dart.report import (
    CHECKPOINT_CORRUPT,
    COMPLETE,
    INTERRUPTED,
    RESOURCE_EXHAUSTED,
)
from repro.dart.runner import Dart
from repro.faults import (
    ALL_SITES,
    LOSSY_SITES,
    FaultInjector,
    FaultPlan,
)
from repro.faults import points as fault_points
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.samples import H_SOURCE, H_TOPLEVEL


def error_keys(result):
    return {(error.kind, str(error.location)) for error in result.errors}


def run_ac(fault_plan=None, **overrides):
    options = dict(depth=2, strategy="bfs", seed=0, max_iterations=150,
                   stop_on_first_error=False, fault_plan=fault_plan)
    options.update(overrides)
    return Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                DartOptions(**options)).run()


@pytest.fixture(scope="module")
def ac_baseline():
    return run_ac()


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.parse("solver.raise@2,solver.raise@5,"
                               "persist.enospc@1")
        assert plan.spec() == "solver.raise@2,solver.raise@5," \
                              "persist.enospc@1"
        assert FaultPlan.parse(plan.spec()).schedule == plan.schedule

    def test_spec_order_is_canonical(self):
        # Same schedule, scrambled spelling -> identical spec.
        one = FaultPlan.parse("persist.enospc@1,solver.raise@5,"
                              "solver.raise@2")
        two = FaultPlan.parse("solver.raise@2,persist.enospc@1,"
                              "solver.raise@5")
        assert one.spec() == two.spec()

    def test_from_seed_is_deterministic(self):
        for seed in range(30):
            first = FaultPlan.from_seed(seed)
            assert first.schedule  # never an empty schedule
            assert first.spec() == FaultPlan.from_seed(seed).spec()
            # And the printed spec replays to the same plan.
            assert FaultPlan.parse(first.spec()).schedule == first.schedule

    def test_from_seed_respects_site_pool(self):
        pool = ("persist.enospc", "persist.bitflip")
        for seed in range(20):
            plan = FaultPlan.from_seed(seed, sites=pool)
            assert plan.sites <= set(pool)

    def test_seed_spec_form(self):
        assert FaultPlan.parse("seed:7").spec() == \
            FaultPlan.from_seed(7).spec()

    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("solver.meltdown@1")

    def test_rejects_zero_occurrence(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("solver.raise@0")

    def test_rejects_bare_site(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("solver.raise")

    def test_empty_plans(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("").spec() == ""

    def test_fires(self):
        plan = FaultPlan.parse("cache.corrupt@3")
        assert plan.fires("cache.corrupt", 3)
        assert not plan.fires("cache.corrupt", 2)
        assert not plan.fires("solver.raise", 3)

    def test_lossy_classification(self):
        assert FaultPlan.parse("solver.raise@1").lossy
        assert FaultPlan.parse("machine.memory@1").lossy
        assert not FaultPlan.parse("persist.enospc@1").lossy
        assert not FaultPlan.parse("worker.kill@1").lossy
        assert LOSSY_SITES <= set(ALL_SITES)


class TestZeroOverheadWhenDisabled:
    def test_no_injector_installed_by_default(self, ac_baseline):
        # The seams read one module attribute and do nothing else; a
        # session without a fault plan must neither install an injector
        # nor count any faults.
        assert fault_points.ACTIVE is None
        assert ac_baseline.stats.faults_injected == 0
        assert ac_baseline.stats.solver_failures == 0
        assert ac_baseline.stats.cache_failures == 0
        assert ac_baseline.stats.checkpoint_failures == 0
        assert ac_baseline.stats.checkpoints_rejected == 0
        assert ac_baseline.stats.pool_retries == 0

    def test_session_uninstalls_owned_injector(self):
        run_ac(fault_plan="solver.raise@1")
        assert fault_points.ACTIVE is None  # removed on session end

    def test_empty_plan_never_fires(self):
        injector = FaultInjector(FaultPlan())
        for _ in range(5):
            assert injector.solver_call() is None
            injector.cache_access()
            injector.machine_probe()
            assert injector.checkpoint_write() is None
        assert injector.fired == []


class TestSolverFaults:
    def test_solver_raise_is_contained(self, ac_baseline):
        result = run_ac(fault_plan="solver.raise@2")
        assert result.stats.faults_injected == 1
        assert result.stats.solver_failures == 1
        # A failed solve degrades to UNKNOWN: the flip is abandoned, the
        # session survives and may lose (never invent) errors.
        assert error_keys(result) <= error_keys(ac_baseline)
        assert result.status != COMPLETE  # degraded: honesty about loss

    def test_solver_unknown_single_blip_is_absorbed_by_escalation(self):
        # One forced UNKNOWN is not even lossy: solve_with_retry
        # escalates the node budget and re-solves, and the second call
        # (occurrence 2) is fault-free.
        result = run_ac(fault_plan="solver.unknown@1")
        assert result.stats.faults_injected == 1
        assert result.stats.solver_retries >= 1
        assert result.stats.solver_unknown == 0

    def test_solver_unknown_past_escalation_degrades(self):
        # Both the original call and its escalated retry forced UNKNOWN:
        # the flip is abandoned and the verdict honestly degrades.
        result = run_ac(fault_plan="solver.unknown@1,solver.unknown@2")
        assert result.stats.faults_injected == 2
        assert result.stats.solver_unknown >= 1
        assert result.status != COMPLETE

    def test_solver_failure_counts_every_occurrence(self):
        result = run_ac(fault_plan="solver.raise@1,solver.raise@2,"
                                   "solver.raise@3")
        assert result.stats.solver_failures == 3

    def test_cache_corruption_self_heals(self, ac_baseline):
        result = run_ac(fault_plan="cache.corrupt@2")
        assert result.stats.faults_injected == 1
        assert result.stats.cache_failures == 1
        # The cache only memoizes solver verdicts, so clearing it is
        # always sound: the session's verdict must be unchanged.
        assert error_keys(result) == error_keys(ac_baseline)
        assert result.status == ac_baseline.status
        assert result.stats.iterations == ac_baseline.stats.iterations


class TestMachineFaults:
    def test_memory_error_is_quarantined(self):
        result = run_ac(fault_plan="machine.memory@3")
        assert result.stats.faults_injected == 1
        records = [record for record in result.quarantined
                   if record.classification == RESOURCE_EXHAUSTED]
        assert len(records) == 1
        assert result.status != COMPLETE  # the run's subtree was lost

    def test_recursion_error_is_quarantined(self):
        result = run_ac(fault_plan="machine.recursion@3")
        records = [record for record in result.quarantined
                   if record.classification == RESOURCE_EXHAUSTED]
        assert len(records) == 1


class TestPersistFaults:
    def run_with_state(self, path, fault_plan=None, **overrides):
        overrides.setdefault("checkpoint_every", 3)
        return run_ac(fault_plan=fault_plan, state_file=path, **overrides)

    def assert_no_temp_debris(self, path):
        assert not glob.glob(path + "*.tmp")
        assert not glob.glob(os.path.join(os.path.dirname(path), "*.tmp"))

    def test_enospc_keeps_previous_checkpoint(self, tmp_path, ac_baseline):
        path = str(tmp_path / "state.json")
        # Budget-exhaust at 10 so the session ends holding a state file
        # (a clean finish would clear it): autosaves at 3, 6 (fails), 9,
        # plus the budget-exhaustion save.
        result = self.run_with_state(path, fault_plan="persist.enospc@2",
                                     max_iterations=10)
        assert result.stats.checkpoint_failures == 1
        self.assert_no_temp_debris(path)
        # The failed save left the *previous* checkpoint in place; later
        # successful saves overwrote it — either way the file on disk is
        # valid, and resuming from it reproduces the clean error set.
        fingerprint = Dart(
            AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
            DartOptions(depth=2, strategy="bfs", seed=0,
                        max_iterations=10, stop_on_first_error=False),
        ).fingerprint
        checkpoint, reason = persist.load_checkpoint_ex(path, fingerprint)
        assert reason == "ok" and checkpoint is not None
        # Resume with the full budget (budget knobs are outside the
        # fingerprint) and finish the search.
        resumed = run_ac(state_file=path, checkpoint_every=3)
        assert resumed.resumed
        assert error_keys(resumed) == error_keys(ac_baseline)

    def test_clean_finish_clears_state_file(self, tmp_path, ac_baseline):
        path = str(tmp_path / "state.json")
        result = self.run_with_state(path, fault_plan="persist.enospc@2")
        assert result.stats.checkpoint_failures == 1
        self.assert_no_temp_debris(path)
        assert error_keys(result) == error_keys(ac_baseline)
        # Full budget: the search drained cleanly, so the checkpoint was
        # cleared exactly as in a fault-free session.
        assert not os.path.exists(path)

    def test_partial_write_leaves_no_temp_file(self, tmp_path, ac_baseline):
        path = str(tmp_path / "state.json")
        result = self.run_with_state(path, fault_plan="persist.partial@1")
        assert result.stats.checkpoint_failures == 1
        self.assert_no_temp_debris(path)
        assert error_keys(result) == error_keys(ac_baseline)

    def corrupt_final_checkpoint(self, tmp_path, site):
        """Run with the *only* save (the budget-exhaustion checkpoint)
        corrupted by ``site``, then resume clean; returns the resumed
        result."""
        path = str(tmp_path / "state.json")
        self.run_with_state(path, fault_plan="{}@1".format(site),
                            max_iterations=10, checkpoint_every=10_000)
        assert os.path.exists(path)  # damaged, but present
        return path, self.run_with_state(path)

    def assert_degraded_reseed(self, resumed, ac_baseline):
        assert not resumed.resumed
        assert resumed.stats.checkpoints_rejected == 1
        records = [record for record in resumed.quarantined
                   if record.classification == CHECKPOINT_CORRUPT]
        assert len(records) == 1
        assert resumed.status != COMPLETE  # lost progress, honest verdict
        assert error_keys(resumed) == error_keys(ac_baseline)

    def test_truncated_checkpoint_reseeds(self, tmp_path, ac_baseline):
        _, resumed = self.corrupt_final_checkpoint(tmp_path,
                                                   "persist.truncate")
        self.assert_degraded_reseed(resumed, ac_baseline)

    def test_bitflipped_checkpoint_reseeds(self, tmp_path, ac_baseline):
        path, resumed = self.corrupt_final_checkpoint(tmp_path,
                                                      "persist.bitflip")
        self.assert_degraded_reseed(resumed, ac_baseline)
        # The checksum, not JSON parsing, must be what catches bit rot
        # when the flip lands inside a value.
        with open(path) as handle:
            payload = json.load(handle)  # may or may not still parse
        assert isinstance(payload, dict)


class TestSignalFaults:
    def test_sigint_mid_checkpoint_write_is_deferred(self, tmp_path,
                                                     ac_baseline):
        # SIGINT delivered in the middle of _atomic_write: the deferral
        # guard must finish the atomic rename first, then let the
        # session's handler interrupt it — leaving a *valid* checkpoint
        # that a clean resume completes from.
        path = str(tmp_path / "state.json")
        interrupted = run_ac(fault_plan="signal.checkpoint@1",
                             state_file=path, checkpoint_every=3,
                             handle_signals=True)
        assert interrupted.status == INTERRUPTED
        resumed = run_ac(state_file=path, checkpoint_every=3)
        assert resumed.resumed
        assert error_keys(resumed) == error_keys(ac_baseline)
        assert resumed.stats.checkpoints_rejected == 0

    def test_sigint_between_runs_checkpoints_and_resumes(self, tmp_path,
                                                         ac_baseline):
        path = str(tmp_path / "state.json")
        interrupted = run_ac(fault_plan="signal.interrupt@2",
                             state_file=path, checkpoint_every=3,
                             handle_signals=True)
        assert interrupted.status == INTERRUPTED
        resumed = run_ac(state_file=path, checkpoint_every=3)
        assert resumed.resumed
        assert error_keys(resumed) == error_keys(ac_baseline)


class TestWorkerFaults:
    def test_worker_kill_retries_and_matches_serial(self, ac_baseline):
        result = run_ac(fault_plan="worker.kill@3", jobs=2)
        assert result.stats.pool_retries == 1
        assert result.stats.faults_injected == 1
        # The generation is re-dispatched with the same payload seeds, so
        # the merged outcome is exactly the undisturbed session's.
        assert error_keys(result) == error_keys(ac_baseline)
        assert result.stats.iterations == ac_baseline.stats.iterations
        assert result.status == ac_baseline.status

    def test_h_dfs_survives_solver_raise(self):
        clean = Dart(H_SOURCE, H_TOPLEVEL,
                     DartOptions(strategy="dfs", seed=0,
                                 max_iterations=100,
                                 stop_on_first_error=False)).run()
        chaotic = Dart(H_SOURCE, H_TOPLEVEL,
                       DartOptions(strategy="dfs", seed=0,
                                   max_iterations=100,
                                   stop_on_first_error=False,
                                   fault_plan="solver.raise@1")).run()
        assert chaotic.stats.solver_failures == 1
        assert error_keys(chaotic) <= error_keys(clean)
