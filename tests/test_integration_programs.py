"""Integration: realistic algorithmic programs run under the machine and
under DART.  These exercise long executions, arrays, helper functions and
planted bugs that need directed input construction."""

import pytest

from repro import DartOptions, dart_check
from repro.interp import Machine
from repro.minic import compile_program

SORT = """
void bubble_sort(int *a, int n) {
  int i; int j; int tmp;
  for (i = 0; i < n; i++) {
    for (j = 0; j + 1 < n - i; j++) {
      if (a[j] > a[j + 1]) {
        tmp = a[j];
        a[j] = a[j + 1];
        a[j + 1] = tmp;
      }
    }
  }
}

int sort_and_check(int x0, int x1, int x2, int x3) {
  int a[4];
  int i;
  a[0] = x0; a[1] = x1; a[2] = x2; a[3] = x3;
  bubble_sort(a, 4);
  for (i = 0; i + 1 < 4; i++) {
    assert(a[i] <= a[i + 1]);
  }
  return a[0];
}
"""

BSEARCH_BUGGY = """
/* Binary search with a planted boundary bug: the last element is never
 * found because the interval is half-open on the wrong side. */
int bsearch4(int k0, int k1, int k2, int k3, int needle) {
  int a[4];
  int lo; int hi; int mid;
  a[0] = k0; a[1] = k1; a[2] = k2; a[3] = k3;
  lo = 0; hi = 3;              /* bug: should be hi = 4 (exclusive) */
  while (lo < hi) {
    mid = (lo + hi) / 2;
    if (a[mid] == needle) return mid;
    if (a[mid] < needle) lo = mid + 1;
    else hi = mid;
  }
  return -1;
}

int check(int needle) {
  int found;
  found = bsearch4(10, 20, 30, 40, needle);
  if (needle == 40) {
    assert(found == 3);   /* violated: the planted bug */
  }
  return found;
}
"""

CSV_FIELD_COUNTER = """
/* Counts fields of a comma-separated record; crashes on a record that
 * ends with a comma followed by nothing (reads one past the buffer
 * when the trailing separator is at the size limit). */
int count_fields(char *record, int length) {
  int i; int fields;
  if (record == NULL) return -1;
  if (length <= 0) return 0;
  fields = 1;
  for (i = 0; i < length; i++) {
    if (record[i] == ',') fields = fields + 1;
  }
  return fields;
}

int demo(void) {
  char buf[16];
  strcpy(buf, "a,bb,ccc");
  return count_fields(buf, strlen(buf));
}
"""


class TestConcreteExecution:
    def test_sort_sorts(self):
        module = compile_program(SORT)
        assert Machine(module).run("sort_and_check", (3, 1, 4, 1)) == 1
        assert Machine(module).run("sort_and_check", (9, -5, 0, 7)) == -5

    def test_sort_assertion_holds_for_extremes(self):
        module = compile_program(SORT)
        big = 2**31 - 1
        small = -(2**31)
        assert Machine(module).run(
            "sort_and_check", (big, small, 0, big)
        ) == small

    def test_bsearch_finds_interior_elements(self):
        module = compile_program(BSEARCH_BUGGY)
        for needle, index in ((10, 0), (20, 1), (30, 2)):
            assert Machine(module).run("check", (needle,)) == index

    def test_csv_counter(self):
        module = compile_program(CSV_FIELD_COUNTER)
        assert Machine(module).run("demo", ()) == 3


class TestDartOnAlgorithms:
    def test_sort_correctness_verified_or_budget(self):
        # 4 inputs, O(n^2) comparisons: a big but finite path space.
        # No assertion violation may be reported (the sort is correct).
        result = dart_check(SORT, "sort_and_check",
                            max_iterations=500, seed=0)
        assert not result.found_error

    def test_dart_finds_the_bsearch_boundary_bug(self):
        result = dart_check(BSEARCH_BUGGY, "check",
                            max_iterations=500, seed=0)
        assert result.status == "bug_found"
        assert result.first_error().inputs[0] == 40
        assert result.first_error().kind == "assertion violation"

    def test_bsearch_bug_not_found_by_luck(self):
        from repro import random_check

        result = random_check(BSEARCH_BUGGY, "check",
                              max_iterations=2000, seed=0)
        assert not result.found_error

    def test_csv_counter_has_no_reachable_fault(self):
        # Toplevel takes (char*, int): the one-cell buffer plus arbitrary
        # length means out-of-bounds lengths DO crash — the API-misuse
        # pattern of §4.3.  DART must find that.
        result = dart_check(CSV_FIELD_COUNTER, "count_fields",
                            max_iterations=200, seed=0)
        assert result.found_error
        assert result.first_error().kind == "segmentation fault"

    def test_deep_loop_iteration_counts(self):
        source = """
        int f(int n) {
          int i; int total;
          if (n < 0) return -1;
          if (n > 50) return -2;
          total = 0;
          for (i = 0; i <= n; i++) total = total + i;
          if (total == 1275) abort();  /* n == 50 */
          return total;
        }
        """
        result = dart_check(source, "f", max_iterations=500, seed=0)
        # total is loop-accumulated from concrete iterations: the abort
        # guard is linear in total but total's dependence on n is not a
        # single constraint; DART explores loop counts until n == 50.
        assert result.status == "bug_found"
        assert result.first_error().inputs[0] == 50
