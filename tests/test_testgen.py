"""The differential fuzzing subsystem: generator, oracles, reducer, CLI.

The acceptance-grade checks live here too: a short campaign must come
back clean, and a deliberately injected slicing bug (monkeypatched
``ConstraintSlicer.slice`` that drops the prefix conjuncts) must be
caught by the substitution oracle and shrunk to a small repro.
"""

import json
import random

from repro.cli import main as cli_main
from repro.dart.driver import build_test_program
from repro.dart.slicing import ConstraintSlicer
from repro.testgen import (
    GeneratorOptions,
    OracleBattery,
    OracleOptions,
    generate_program,
    load_repro,
    replay_repro,
    run_campaign,
    save_repro,
    reduce_inputs,
    reduce_program,
)

#: Small budgets so one battery invocation stays well under a second.
FAST = dict(vectors=2, dart_iterations=60, forcing_iterations=12)


def make_program(seed):
    return generate_program(random.Random(seed), seed=seed)


class TestGenerator:
    def test_same_seed_same_program(self):
        assert make_program(42).render() == make_program(42).render()

    def test_different_seeds_differ(self):
        sources = {make_program(seed).render() for seed in range(8)}
        assert len(sources) == 8

    def test_generated_programs_compile(self):
        for seed in range(40):
            program = make_program(seed)
            module = build_test_program(program.render(), program.toplevel)
            assert module is not None

    def test_statement_count_matches_structure(self):
        program = make_program(3)
        assert program.statement_count() >= 1
        assert program.clone().render() == program.render()

    def test_options_bound_size(self):
        opts = GeneratorOptions(max_statements=6, max_conditionals=2)
        for seed in range(10):
            program = generate_program(random.Random(seed), opts, seed=seed)
            module = build_test_program(program.render(), program.toplevel)
            assert module is not None


class TestOracleBattery:
    def test_clean_program_has_no_divergences(self):
        battery = OracleBattery(OracleOptions(**FAST))
        program = make_program(7)
        assert battery.check(program) == []

    def test_transparency_vector_accepts_explicit_inputs(self):
        battery = OracleBattery(OracleOptions(**FAST))
        program = make_program(11)
        module = build_test_program(program.render(), program.toplevel)
        # Probe the program's input signature with one random vector.
        battery.check_transparency(program, module)
        assert battery.counters["vectors"] >= 1

    def test_constraint_fuzz_agrees_with_brute_force(self):
        battery = OracleBattery(OracleOptions(**FAST))
        assert battery.check_constraint_fuzz(random.Random(0),
                                             systems=25) == []
        assert battery.counters["solver_systems"] == 25


class TestReducers:
    def test_reduce_program_shrinks_while_predicate_holds(self):
        program = make_program(13)
        original = program.statement_count()

        def interesting(candidate):
            try:
                build_test_program(candidate.render(), candidate.toplevel)
            except Exception:
                return False
            return candidate.statement_count() >= 1

        reduced, tests = reduce_program(program, interesting)
        assert tests >= 1
        assert reduced.statement_count() <= original
        assert interesting(reduced)
        # The input program is never mutated.
        assert program.statement_count() == original

    def test_reduce_inputs_moves_values_toward_zero(self):
        reduced, _ = reduce_inputs([8, 5, 3], lambda v: sum(v) >= 8)
        assert sum(reduced) >= 8
        assert reduced == [0, 5, 3]

    def test_reduce_inputs_keeps_vector_length(self):
        reduced, _ = reduce_inputs([4, -6], lambda v: True)
        assert reduced == [0, 0]


class TestCampaign:
    def test_short_campaign_is_clean(self):
        report = run_campaign(seed=0, budget=3,
                              oracle_opts=OracleOptions(**FAST),
                              parallel_every=0)
        assert report.ok
        assert report.programs == 3
        assert report.counters["programs"] == 3
        assert "0 divergence(s)" in report.describe()

    def test_repro_files_round_trip(self, tmp_path):
        from repro.testgen.harness import FoundDivergence

        found = FoundDivergence(
            seed=9, index=1, oracle="transparency", detail="test detail",
            program=make_program(9), inputs=[1, 2], kinds=["int", "int"],
            comment="fuzz seed 9")
        path = save_repro(str(tmp_path), found)
        payload = load_repro(path)
        assert payload["seed"] == 9
        assert payload["oracle"] == "transparency"
        assert payload["source"] == make_program(9).render()
        assert payload["inputs"] == [1, 2]

    def test_cli_fuzz_exit_zero_when_clean(self, capsys):
        code = cli_main(["fuzz", "--seed", "0", "--budget", "2",
                         "--dart-iterations", "60", "--parallel-every", "0",
                         "--progress-every", "0"])
        assert code == 0
        assert "0 divergence(s)" in capsys.readouterr().out


class TestInjectedSlicingBug:
    """Acceptance: a broken slicer must be caught and shrunk."""

    def test_caught_by_substitution_oracle_and_shrunk(self, monkeypatch,
                                                      tmp_path):
        def broken_slice(self, j, negated):
            # Drop every prefix conjunct from the sliced query: the solver
            # then freely violates constraints the planned run must keep.
            return [negated]

        monkeypatch.setattr(ConstraintSlicer, "slice", broken_slice)
        report = run_campaign(
            seed=5, budget=40, oracle_opts=OracleOptions(**FAST),
            parallel_every=0, solver_fuzz=False, stop_on_first=True,
            out_dir=str(tmp_path))
        assert not report.ok
        found = report.divergences[0]
        assert found.oracle == "substitution"
        assert found.program.statement_count() <= 15
        # The shrunk repro landed on disk and parses.
        assert report.repro_paths
        payload = load_repro(report.repro_paths[0])
        assert payload["oracle"] == "substitution"
        assert payload["statements"] <= 15

    def test_injected_bug_repro_is_clean_without_the_bug(self, monkeypatch,
                                                         tmp_path):
        def broken_slice(self, j, negated):
            return [negated]

        with monkeypatch.context() as patch:
            patch.setattr(ConstraintSlicer, "slice", broken_slice)
            report = run_campaign(
                seed=5, budget=40, oracle_opts=OracleOptions(**FAST),
                parallel_every=0, solver_fuzz=False, stop_on_first=True,
                out_dir=str(tmp_path))
            assert report.repro_paths
        # The monkeypatch is gone; the same repro must replay clean.
        assert replay_repro(report.repro_paths[0],
                            OracleOptions(**FAST)) == []
