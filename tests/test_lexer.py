"""Unit tests for the mini-C lexer."""

import pytest

from repro.minic.errors import LexError
from repro.minic.lexer import tokenize
from repro.minic.tokens import (
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    PUNCT,
    STRING_LIT,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifier(self):
        tokens = tokenize("hello_world42")
        assert tokens[0].kind == IDENT
        assert tokens[0].text == "hello_world42"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("__dart_int")[0].kind == IDENT

    def test_keyword_recognized(self):
        tokens = tokenize("int")
        assert tokens[0].kind == KEYWORD

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("integer")[0].kind == IDENT

    def test_all_statement_keywords(self):
        for kw in ("if", "else", "while", "for", "return", "break",
                   "continue", "do", "sizeof", "struct", "typedef"):
            assert tokenize(kw)[0].kind == KEYWORD, kw

    def test_punctuation_sequence(self):
        assert texts("+ - * / % = == != <= >= && || -> ++ --") == [
            "+", "-", "*", "/", "%", "=", "==", "!=", "<=", ">=",
            "&&", "||", "->", "++", "--",
        ]

    def test_maximal_munch(self):
        # ">>=" must lex as one token, not ">" ">" "=".
        assert texts("a >>= b") == ["a", ">>=", "b"]

    def test_arrow_vs_minus(self):
        assert texts("a->b - c") == ["a", "->", "b", "-", "c"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int $x;")


class TestNumbers:
    def test_decimal(self):
        assert values("42") == [42]

    def test_zero(self):
        assert values("0") == [0]

    def test_hex(self):
        assert values("0xFF 0x10") == [255, 16]

    def test_octal(self):
        assert values("017") == [15]

    def test_suffixes_ignored(self):
        assert values("10u 10L 10UL") == [10, 10, 10]

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_malformed_octal(self):
        with pytest.raises(LexError):
            tokenize("09")

    def test_trailing_letter_rejected(self):
        with pytest.raises(LexError):
            tokenize("12abc")


class TestCharAndString:
    def test_simple_char(self):
        tokens = tokenize("'A'")
        assert tokens[0].kind == CHAR_LIT
        assert tokens[0].value == 65

    def test_escape_chars(self):
        assert values(r"'\n' '\t' '\0' '\\'") == [10, 9, 0, 92]

    def test_hex_escape(self):
        assert values(r"'\x41'") == [65]

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_empty_char(self):
        with pytest.raises(LexError):
            tokenize("''")

    def test_string_literal(self):
        tokens = tokenize('"hello"')
        assert tokens[0].kind == STRING_LIT
        assert tokens[0].value == b"hello"

    def test_string_with_escapes(self):
        assert values(r'"a\nb\0d"') == [b"a\nb\x00d"]

    def test_hex_escape_is_greedy_like_c(self):
        # \x consumes every following hex digit, so "\x00c" is the single
        # byte 0x00c & 0xFF == 0x0c — exactly what a C compiler produces.
        assert values(r'"\x00c"') == [b"\x0c"]
        assert values(r'"\x41g"') == [b"Ag"]  # 'g' is not a hex digit

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_string_may_not_span_lines(self):
        with pytest.raises(LexError):
            tokenize('"abc\ndef"')


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x * y */ b") == ["a", "b"]

    def test_block_comment_multiline(self):
        assert texts("a /* 1\n2\n3 */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_preprocessor_lines_skipped(self):
        assert texts('#include <assert.h>\nint x;') == ["int", "x", ";"]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_recorded(self):
        tokens = tokenize("x", filename="prog.c")
        assert tokens[0].location.filename == "prog.c"

    def test_columns_advance_across_token(self):
        tokens = tokenize("abc def")
        assert tokens[1].location.column == 5
