"""Tests for the generated oSIP-like library and the Section 4.3 findings."""

import pytest

from repro import DartOptions, dart_check
from repro.dart.runner import Dart
from repro.interp import Machine, MachineOptions, SegFault
from repro.interp.memory import MemoryOptions
from repro.minic import compile_program
from repro.programs.osip import OsipLibrary


@pytest.fixture(scope="module")
def library():
    return OsipLibrary()


def sweep_options(**overrides):
    defaults = dict(max_iterations=1000, seed=1, max_steps=200_000,
                    max_init_depth=4)
    defaults.update(overrides)
    return DartOptions(**defaults)


class TestGeneration:
    def test_function_count_matches_paper_scale(self, library):
        assert 550 <= len(library.functions) <= 650

    def test_expected_crash_rate_near_65_percent(self, library):
        assert 0.60 <= library.expected_crash_rate() <= 0.70

    def test_generation_is_deterministic(self):
        a = OsipLibrary(seed=7)
        b = OsipLibrary(seed=7)
        assert a.function_names() == b.function_names()
        assert a.full_source() == b.full_source()

    def test_different_seed_different_library(self):
        assert OsipLibrary(seed=1).full_source() != \
            OsipLibrary(seed=2).full_source()

    def test_every_module_compiles(self, library):
        for module in library.module_names:
            compile_program(library.source_for_module(module))

    def test_full_source_compiles(self, library):
        compile_program(library.full_source())

    def test_function_lookup(self, library):
        name = library.function_names()[0]
        assert library.function(name).name == name
        with pytest.raises(KeyError):
            library.function("osip_missing")

    def test_parser_module_present(self, library):
        names = library.function_names()
        assert "osip_message_parse" in names
        assert "osip_attack_probe" in names


class TestPerFunctionSweep:
    """A sampled version of the paper's 600-function crash sweep."""

    def test_unguarded_getter_crashes_on_null(self, library):
        victim = next(
            f for f in library.functions
            if f.crashable and "getter" in f.name
        )
        result = dart_check(library.source_for_function(victim.name),
                            victim.name, sweep_options())
        assert result.found_error
        assert result.first_error().kind == "segmentation fault"

    def test_guarded_function_does_not_crash(self, library):
        victim = next(
            f for f in library.functions
            if f.guarded and f.takes_pointer and "getter" in f.name
        )
        result = dart_check(library.source_for_function(victim.name),
                            victim.name, sweep_options())
        assert not result.found_error

    def test_scalar_only_function_never_crashes(self, library):
        victim = next(f for f in library.functions if not f.takes_pointer)
        result = dart_check(library.source_for_function(victim.name),
                            victim.name, sweep_options())
        assert not result.found_error

    def test_interprocedural_crash_found(self, library):
        victim = next(
            f for f in library.functions
            if f.crashable and "init" in f.name and "helper" not in f.name
        )
        result = dart_check(library.source_for_function(victim.name),
                            victim.name, sweep_options())
        assert result.found_error

    def test_sampled_crash_rate_in_band(self, library):
        import random

        rng = random.Random(0)
        sample = rng.sample(
            [f for f in library.functions if f.module != "parser"], 24
        )
        crashed = expected = 0
        for fn in sample:
            result = dart_check(library.source_for_function(fn.name),
                                fn.name, sweep_options())
            crashed += bool(result.found_error)
            expected += fn.crashable
        assert crashed == expected


class TestAllocaSecurityBug:
    """The remotely-triggerable parser crash of Section 4.3."""

    def _probe(self, size, stack_limit):
        library = OsipLibrary()
        module = compile_program(library.source_for_module("parser"))
        machine = Machine(
            module,
            MachineOptions(
                max_steps=10_000_000,
                memory=MemoryOptions(stack_limit=stack_limit),
            ),
        )
        return machine.run("osip_attack_probe", (size,))

    def test_small_message_parses_fine(self):
        assert self._probe(1024, stack_limit=1 << 16) == 0

    def test_oversized_message_crashes_parser(self):
        # A message larger than the remaining stack: alloca returns NULL,
        # the unchecked copy faults — the paper's attack.
        with pytest.raises(SegFault, match="NULL"):
            self._probe(1 << 17, stack_limit=1 << 16)

    def test_checked_sibling_survives_oversized_message(self):
        library = OsipLibrary()
        module = compile_program(library.source_for_module("parser"))
        machine = Machine(
            module,
            MachineOptions(
                max_steps=10_000_000,
                memory=MemoryOptions(stack_limit=1 << 16),
            ),
        )
        msg = machine.memory.malloc(64)
        sip = machine.memory.malloc(32)
        assert machine.run(
            "osip_message_parse_checked", (sip, msg, 1 << 20)
        ) == -3  # graceful failure instead of a crash

    def test_dart_finds_the_alloca_crash_automatically(self):
        # Random 32-bit lengths readily exceed any realistic stack, so the
        # per-function sweep finds the parser crash, as the paper reports.
        library = OsipLibrary()
        options = sweep_options(stack_limit=1 << 16)
        result = dart_check(library.source_for_module("parser"),
                            "osip_attack_probe", options)
        assert result.found_error
        assert result.first_error().kind == "segmentation fault"
