"""Crash-resume equivalence, as a property.

The headline robustness invariant: a session interrupted at an
*arbitrary* point and resumed from its checkpoint must converge to
exactly the fault-free session's verdict — same error set, no duplicate
reports, same amount of search work.  Hypothesis drives the interrupt
point (and optionally a second interrupt hitting the resumed session)
through the real SIGINT delivery path via the ``signal.interrupt``
fault site.

Note: ``tempfile`` is used instead of the ``tmp_path`` fixture —
function-scoped fixtures do not reset between Hypothesis examples.
"""

import os
import tempfile

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import DartOptions
from repro.dart.report import INTERRUPTED
from repro.dart.runner import Dart
from repro.faults import FaultPlan
from repro.faults import points as fault_points
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)

MAX_RESUMES = 6

_baselines = {}


def run_session(strategy, state_file=None):
    options = DartOptions(
        depth=2, strategy=strategy, seed=0, max_iterations=150,
        stop_on_first_error=False, state_file=state_file,
        checkpoint_every=2, handle_signals=state_file is not None,
    )
    return Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                options).run()


def baseline(strategy):
    if strategy not in _baselines:
        _baselines[strategy] = run_session(strategy)
    return _baselines[strategy]


def equivalence_key(result):
    """Everything the resumed session must reproduce exactly."""
    stats = result.stats
    return {
        "status": result.status,
        "iterations": stats.iterations,
        "distinct_paths": sorted(stats.distinct_paths),
        "covered": sorted(stats.covered_branches),
        "errors": [(error.kind, str(error.location), tuple(error.inputs))
                   for error in sorted(
                       result.errors,
                       key=lambda e: (e.kind, str(e.location)))],
    }


@given(
    strategy=st.sampled_from(("bfs", "dfs")),
    first_kill=st.integers(min_value=1, max_value=30),
    second_kill=st.none() | st.integers(min_value=1, max_value=30),
)
@settings(max_examples=15, deadline=None)
def test_crash_resume_equivalence(strategy, first_kill, second_kill):
    reference = baseline(strategy)
    occurrences = {first_kill}
    if second_kill is not None:
        occurrences.add(second_kill)
    plan = FaultPlan({"signal.interrupt": occurrences})
    with tempfile.TemporaryDirectory() as scratch:
        state_file = os.path.join(scratch, "state.json")
        # One injector across the whole interrupt/resume chain, exactly
        # like an operator's terminal: each scheduled SIGINT lands once.
        with fault_points.active(plan):
            result = run_session(strategy, state_file)
            resumes = 0
            while result.status == INTERRUPTED and resumes < MAX_RESUMES:
                result = run_session(strategy, state_file)
                resumes += 1
        assert result.status != INTERRUPTED, \
            "not terminated after {} resume(s)".format(MAX_RESUMES)
        # An interrupt past the session's natural end never fires; when
        # one did fire, the resumed chain must have actually resumed.
        if resumes:
            assert result.resumed
        # No checkpoint damage was injected, so nothing may degrade.
        assert result.stats.checkpoints_rejected == 0
        # No duplicate error reports across the crash boundaries.
        keys = [(error.kind, str(error.location))
                for error in result.errors]
        assert len(keys) == len(set(keys))
        # The headline: bit-for-bit the fault-free session's verdict.
        assert equivalence_key(result) == equivalence_key(reference)
    assert fault_points.ACTIVE is None
