"""Shared plumbing for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
and prints it in the paper's row format (run with ``-s`` to see the tables
inline; the numbers are also attached to pytest-benchmark's ``extra_info``).

Environment:
    DART_BENCH_FULL=1   run the expensive rows too (the Fig. 10 depth-4
                        attack search and the full 600-function oSIP
                        sweep); without it the suite stays laptop-quick
                        while still exhibiting every qualitative result.
"""

import os


def full_mode():
    return os.environ.get("DART_BENCH_FULL", "") == "1"


def print_table(title, headers, rows):
    """Render an aligned table to stdout (visible with pytest -s)."""
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows),
                                      default=0))
        for i in range(len(headers))
    ]
    line = "  ".join("{:<{}}".format(h, w) for h, w in zip(headers, widths))
    print("\n== {} ==".format(title))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(
            "{:<{}}".format(str(cell), w) for cell, w in zip(row, widths)
        ))


def outcome(result):
    """A compact outcome cell: error kind or termination status."""
    if result.found_error:
        return "ERROR ({})".format(result.first_error().kind)
    if result.complete:
        return "no error (all paths)"
    return "no error (budget)"


def attach(benchmark, **info):
    """Record table values in pytest-benchmark's extra_info."""
    if benchmark is not None:
        for key, value in info.items():
            benchmark.extra_info[key] = value
