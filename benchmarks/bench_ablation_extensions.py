"""Ablations for the design choices DESIGN.md calls out beyond the paper.

1. *Directed pointer coins*: the generated driver's NULL-or-fresh coin
   (Fig. 8) as a solvable 0/1 input versus the paper's plain randomness.
   Directed coins reach pointer-shape-dependent bugs systematically and
   restore completeness claims; paper mode relies on restarts.
2. *Transparent memory*: letting memcpy/strcpy move symbolic values
   instead of treating them as opaque library calls.  Opaque mode (the
   paper) loses the constraint and the bug; transparent mode solves it.
3. *Bounded random_init*: the recursion bound that keeps directed
   searches over recursive input types (lists) finite.
"""

from _common import attach, print_table

from repro import DartOptions, dart_check

POINTER_BUG = """
struct box { int v; };
int f(struct box *b) {
  if (b == NULL) return -1;
  if (b->v == 123456) abort();
  return b->v;
}
"""

MEMCPY_BUG = """
int f(int x) {
  int copy;
  memcpy(&copy, &x, sizeof(int));
  if (copy == 424242) abort();
  return copy;
}
"""

LIST_PROBE = """
struct node { int value; struct node *next; };
int probe(struct node *head) {
  if (head != NULL)
    if (head->next != NULL)
      if (head->next->value == 777)
        abort();
  return 0;
}
"""


def test_ablation_pointer_coins(benchmark):
    results = {}

    def sweep():
        results["directed"] = dart_check(
            POINTER_BUG, "f",
            DartOptions(max_iterations=500, seed=0,
                        directed_pointer_choices=True),
        )
        results["paper"] = dart_check(
            POINTER_BUG, "f",
            DartOptions(max_iterations=500, seed=0,
                        directed_pointer_choices=False),
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (mode, "yes" if r.found_error else "no", r.iterations,
         "claimable" if r.flags[0] and r.flags[1] else "lost")
        for mode, r in results.items()
    ]
    print_table(
        "Ablation: pointer coin tosses (directed vs paper-random)",
        ("mode", "bug found?", "runs", "completeness"),
        rows,
    )
    assert results["directed"].found_error
    assert results["directed"].iterations <= results["paper"].iterations \
        or not results["paper"].found_error
    attach(benchmark,
           directed_runs=results["directed"].iterations,
           paper_runs=results["paper"].iterations)


def test_ablation_transparent_memory(benchmark):
    results = {}

    def sweep():
        results["opaque"] = dart_check(
            MEMCPY_BUG, "f",
            DartOptions(max_iterations=100, seed=0),
        )
        results["transparent"] = dart_check(
            MEMCPY_BUG, "f",
            DartOptions(max_iterations=100, seed=0,
                        transparent_memory=True),
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (mode, "yes" if r.found_error else "no", r.iterations)
        for mode, r in results.items()
    ]
    print_table(
        "Ablation: opaque (paper) vs transparent memcpy",
        ("memcpy handling", "bug found?", "runs"),
        rows,
    )
    assert not results["opaque"].found_error  # black box loses the value
    assert results["transparent"].found_error
    assert results["transparent"].first_error().inputs[0] == 424242


def test_ablation_init_depth_bound(benchmark):
    results = {}

    def sweep():
        results["bounded"] = dart_check(
            LIST_PROBE, "probe",
            DartOptions(max_iterations=500, seed=0, max_init_depth=4),
        )
        results["unbounded"] = dart_check(
            LIST_PROBE, "probe",
            DartOptions(max_iterations=500, seed=0),
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (mode, "yes" if r.found_error else "no", r.iterations, r.status)
        for mode, r in results.items()
    ]
    print_table(
        "Ablation: bounded vs unbounded random_init recursion",
        ("init recursion", "bug found?", "runs", "status"),
        rows,
    )
    # Both find the 2-cell-list bug; the bound matters for termination of
    # clean programs (covered in the test suite), not for bug finding.
    assert results["bounded"].found_error
    assert results["unbounded"].found_error
