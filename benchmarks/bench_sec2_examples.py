"""Section 2 motivating examples: directed search vs. random testing.

Paper claims reproduced here:

* §2.1 (``h``/``f``): DART finds the abort on the second run; random
  testing essentially never does.
* §2.4 (``z = y``): DART terminates after proving both feasible paths
  explored, with every completeness flag still set.
* §2.5 (struct/char* cast): DART reaches the abort by solving
  ``a->c == 0`` on the heap cell it allocated.
* §2.5 (``foobar``): despite the non-linear guard, the reachable abort is
  found with inputs (x > 0, y == 10); the unreachable one never is.
"""

from _common import attach, outcome, print_table

from repro import DartOptions, dart_check, random_check
from repro.programs import samples

RANDOM_BUDGET = 5_000


def _directed(source, toplevel, **kwargs):
    return dart_check(source, toplevel, max_iterations=1000, seed=0,
                      **kwargs)


def test_table_section2(benchmark):
    rows = []
    results = {}

    def sweep():
        for name, (source, toplevel, _) in samples.ALL_SAMPLES.items():
            results[name] = (
                _directed(source, toplevel),
                random_check(source, toplevel,
                             max_iterations=RANDOM_BUDGET, seed=0),
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    for name, (source, toplevel, has_bug) in samples.ALL_SAMPLES.items():
        directed, baseline = results[name]
        rows.append((
            name,
            outcome(directed),
            directed.iterations,
            outcome(baseline),
            baseline.iterations,
        ))
        # The qualitative claims:
        assert directed.found_error == has_bug, name
        # Random testing misses every *value-dependent* bug (the NULL-
        # pointer half of struct_cast is the one exception: the driver's
        # coin gives NULL with p = .5, so any tester trips over it).
        if has_bug and name != "struct_cast":
            assert not baseline.found_error, (
                name + ": random testing should not find this"
            )
    print_table(
        "Section 2 examples: directed vs random",
        ("program", "directed", "runs", "random", "runs"),
        rows,
    )
    attach(benchmark, **{
        name: results[name][0].iterations for name in results
    })


def test_h_example_second_run(benchmark):
    """§2.1: 'the second execution then reveals the error'."""
    result = benchmark.pedantic(
        lambda: dart_check(samples.H_SOURCE, "h", max_iterations=10,
                           seed=7),
        rounds=1, iterations=1,
    )
    assert result.found_error and result.iterations == 2
    attach(benchmark, runs_to_error=result.iterations)


def test_struct_cast_reaches_abort(benchmark):
    """§2.5: the abort behind the char*/struct alias is reachable."""
    options = DartOptions(max_iterations=200, seed=3,
                          stop_on_first_error=False)
    result = benchmark.pedantic(
        lambda: dart_check(samples.STRUCT_CAST_SOURCE, "bar", options),
        rounds=1, iterations=1,
    )
    kinds = {error.kind for error in result.errors}
    assert "abort" in kinds
    attach(benchmark, errors=sorted(kinds))


def test_foobar_only_reachable_abort(benchmark):
    """§2.5: abort at line 4 found; abort at line 7 never reported."""
    def sweep():
        found = []
        for seed in range(6):
            result = dart_check(samples.FOOBAR_SOURCE, "foobar",
                                max_iterations=300, seed=seed)
            assert result.found_error, seed
            found.append(tuple(result.first_error().inputs[:2]))
        return found

    found = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for x, y in found:
        assert x > 0 and y == 10  # always the line-4 abort
    attach(benchmark, triggers=found)
