"""Ablation: branch-selection strategies (the paper's footnote 4).

"A depth-first search is used for exposition, but the next branch to be
forced could be selected using a different strategy, e.g., randomly or in
a breadth-first manner."  This ablation runs all three on the AC
controller and on the NS possibilistic model, comparing runs-to-bug and
runs-to-coverage.
"""

from _common import attach, print_table

from repro import dart_check
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.needham_schroeder import ns_source

STRATEGIES = ("dfs", "bfs", "random")


def test_ablation_strategy_runs_to_bug(benchmark):
    results = {}

    def sweep():
        for strategy in STRATEGIES:
            results[strategy] = {
                "ac": dart_check(
                    AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                    depth=2, max_iterations=2000, seed=0,
                    strategy=strategy,
                ),
                "ns": dart_check(
                    ns_source("possibilistic"), "ns_step",
                    depth=2, max_iterations=20_000, seed=0,
                    strategy=strategy,
                ),
            }
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (strategy,
         results[strategy]["ac"].iterations,
         results[strategy]["ns"].iterations)
        for strategy in STRATEGIES
    ]
    print_table(
        "Ablation: runs until the bug, by strategy",
        ("strategy", "AC controller (depth 2)", "NS possibilistic"),
        rows,
    )
    for strategy in STRATEGIES:
        assert results[strategy]["ac"].found_error, strategy
        assert results[strategy]["ns"].found_error, strategy
    attach(benchmark, **{
        "{}_ac".format(s): results[s]["ac"].iterations for s in STRATEGIES
    })


def test_ablation_strategy_coverage_identical(benchmark):
    """Exploration order must not change the set of feasible paths."""
    results = {}

    def sweep():
        for strategy in STRATEGIES:
            results[strategy] = dart_check(
                AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                depth=1, max_iterations=1000, seed=0, strategy=strategy,
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (strategy, results[strategy].iterations,
         len(results[strategy].stats.distinct_paths),
         results[strategy].status)
        for strategy in STRATEGIES
    ]
    print_table(
        "Ablation: full coverage of the AC controller (depth 1)",
        ("strategy", "runs", "distinct paths", "status"),
        rows,
    )
    path_sets = [results[s].stats.distinct_paths for s in STRATEGIES]
    assert path_sets[0] == path_sets[1] == path_sets[2]
    for strategy in STRATEGIES:
        assert results[strategy].complete, strategy
