"""Solver-throughput benchmark: slicing + caching + parallel search.

Measures the PR's three optimisation layers on the paper's Section 4.1
AC-controller benchmark (full path exploration at depth 2, so the
workload is the whole search tree, not just the run that finds the bug):

* **ablation** — baseline (slicing and cache disabled) vs. optimised
  (both enabled) under dfs and bfs: wall time, solver calls, average
  conjuncts per call, cache hit rate.  The verdict, triggering inputs
  and deduplicated error set must be *identical* — the optimisations may
  change models, never outcomes — and the acceptance bar is a >= 30%
  reduction in actual solver calls.
* **parallel** — the bfs search with ``jobs=2`` must report exactly the
  serial engine's error set (and, in full mode, the same check on the
  depth-2 Needham-Schroeder possibilistic attack search), and the
  persistent-pool gate runs a *depth-scaled* benchmark (heavy concrete
  loops behind independent symbolic guards — execution dominates, the
  shape the pipelined pool is built for): identical error sets, shared
  cache hit rate >= serial's, and pool wall-clock < serial wall-clock.
  The wall gate needs real hardware parallelism, so it is enforced only
  when the host exposes >= 2 usable CPUs (CI does); a single-CPU host
  records the measurement and the skip reason in the JSON.
* **coverage** — the C1 branch-coverage-vs-run-budget curve on the
  depth-2 bfs search (budgets 1..128, doubling): the curve must be
  monotone non-decreasing and its largest budget must reach the
  full-exploration reference C1 — coverage accounting that drifts, or a
  search that stops discovering, fails the gate.
* **phases** — one profiled (``profile_phases=True``) depth-2 dfs run
  recording where the session's wall time goes (execute / compile /
  solve / cache / checkpoint, from :mod:`repro.obs.profile`), plus a
  tracing-overhead row: the same search with and without
  instrumentation, gating that disabled observability stays within the
  noise (<= 2% is the budget; the check uses best-of-3 walls to damp
  scheduler jitter).
* **throughput** — the PR 7 compiled-engine gate: the same oSIP-shaped
  compute kernel (symbolic command dispatch around concrete parse/
  checksum loops) searched to completion under the compiled engine and
  under ``--no-compile``; executed instructions per second over the
  execute(+compile) phases must improve by >= 3x, with identical
  verdicts, error sets and instruction counts (the engines are
  observationally identical — only the clock may move).

Every wall-clock figure a gate compares is a best-of-N over ``runs``
independent sessions (recorded in the JSON), so one preempted timeslice
cannot fail CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py [--quick] [--out FILE]

Writes ``BENCH_perf.json`` (repo root by default) and exits non-zero if
any invariant above is violated, so CI can gate on it.  ``--quick``
skips the Needham-Schroeder row to stay CI-cheap; the qualitative result
is identical.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import DartOptions  # noqa: E402
from repro.dart.runner import Dart  # noqa: E402
from repro.programs.ac_controller import (  # noqa: E402
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.needham_schroeder import ns_source  # noqa: E402

ACCEPT_REDUCTION = 0.30  # required solver-call reduction (ISSUE bar)
ACCEPT_SPEEDUP = 3.0     # required compiled-engine throughput gain
WALL_RUNS = 3            # best-of-N for every gated wall-clock figure


def _run(source, toplevel, **overrides):
    options = DartOptions(**overrides)
    start = time.perf_counter()
    result = Dart(source, toplevel, options).run()
    wall = time.perf_counter() - start
    stats = result.stats
    return {
        "status": result.status,
        "iterations": result.iterations,
        "errors": sorted({
            "{}@{}".format(error.kind, error.location)
            for error in result.errors
        }),
        "first_error_inputs": list(result.first_error().inputs)
        if result.found_error else None,
        "wall_s": round(wall, 4),
        "solver_calls": stats.solver_calls,
        "avg_constraints_per_call":
            round(stats.avg_constraints_per_call, 2),
        "sliced_conjuncts_dropped": stats.sliced_conjuncts_dropped,
        "cache_hit_rate": round(stats.cache_hit_rate, 4),
        "cache_hits": stats.cache_hits,
        "cache_unsat_shortcuts": stats.cache_unsat_shortcuts,
        "cache_model_reuses": stats.cache_model_reuses,
        "cache_misses": stats.cache_misses,
        "flips_subsumed_core": stats.flips_subsumed_core,
        "worklist_deduped": stats.worklist_deduped,
        "conjuncts_widened": stats.conjuncts_widened,
        "conjuncts_dropped_unfaithful":
            stats.conjuncts_dropped_unfaithful,
    }


def ablation(strategy, failures):
    """Baseline vs. optimised on the AC controller, one strategy."""
    common = dict(depth=2, max_iterations=1000, seed=0, strategy=strategy,
                  stop_on_first_error=False)
    baseline = _run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                    constraint_slicing=False, solver_cache=False, **common)
    optimised = _run(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                     constraint_slicing=True, solver_cache=True, **common)
    reduction = 1.0 - optimised["solver_calls"] / baseline["solver_calls"]
    row = {
        "strategy": strategy,
        "baseline": baseline,
        "optimised": optimised,
        "solver_call_reduction": round(reduction, 4),
    }
    for field in ("status", "errors", "first_error_inputs"):
        if baseline[field] != optimised[field]:
            failures.append(
                "ablation[{}]: {} differs (baseline {!r}, optimised {!r})"
                .format(strategy, field, baseline[field], optimised[field])
            )
    if reduction < ACCEPT_REDUCTION:
        failures.append(
            "ablation[{}]: solver-call reduction {:.1%} below the "
            "{:.0%} bar".format(strategy, reduction, ACCEPT_REDUCTION)
        )
    return row


def parallel_check(name, source, toplevel, failures, **common):
    """Serial vs. jobs=2 generational search: identical error sets."""
    serial = _run(source, toplevel, jobs=1, **common)
    parallel = _run(source, toplevel, jobs=2, **common)
    row = {"benchmark": name, "serial": serial, "parallel": parallel}
    for field in ("status", "errors"):
        if serial[field] != parallel[field]:
            failures.append(
                "parallel[{}]: {} differs (serial {!r}, jobs=2 {!r})"
                .format(name, field, serial[field], parallel[field])
            )
    return row


#: Depth-scaled workload for the persistent-pool gate: the concrete
#: loop nest makes every run ~15k instructions (execution dominates the
#: session), and the four independent symbolic guards fan the bfs
#: frontier out to 16 runs — enough in-flight items to keep both
#: workers busy, so the pipelined pool's overlap shows up as wall-clock.
PIPELINE_SOURCE = """
int pipeline_bench(int a, int b, int c, int d) {
  int i; int j; int acc; int sum; int table[32]; int hits;
  acc = 0; sum = 0; hits = 0;
  for (i = 0; i < 32; i = i + 1) { table[i] = (i * 16807) % 97; }
  for (i = 0; i < 48; i = i + 1) {
    for (j = 0; j < 32; j = j + 1) {
      acc = acc + table[j] * (j + i);
      sum = sum ^ (acc >> 3);
      acc = acc & 1048575;
      sum = sum + (table[j] ^ i);
    }
  }
  if (a > sum % 7) { hits = hits + 1; }
  if (b == 41) { hits = hits + 2; }
  if (c < -100) { hits = hits + 4; }
  if (d > 500) { hits = hits + 8; }
  if (hits == 15) { abort(); }
  return hits;
}
"""


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux fallback
        return os.cpu_count() or 1


def pipeline_gate(failures):
    """The persistent-pool hard gate on the depth-scaled benchmark.

    Serial and jobs=2 each run ``WALL_RUNS`` sessions (best wall kept).
    Always gated: identical status/errors/iterations, and the pool's
    cache hit rate at least the serial session's (the shared store must
    never lose sharing the serial cache had).  Gated when the host has
    >= 2 usable CPUs: pool wall-clock strictly below serial wall-clock.
    """
    common = dict(max_iterations=200, seed=0, strategy="bfs",
                  stop_on_first_error=False)

    def best(jobs):
        rows = [_run(PIPELINE_SOURCE, "pipeline_bench", jobs=jobs,
                     **common) for _ in range(WALL_RUNS)]
        return min(rows, key=lambda row: row["wall_s"])

    serial = best(1)
    pool = best(2)
    cpus = _usable_cpus()
    wall_gate = "enforced" if cpus >= 2 else \
        "skipped (single usable CPU: no hardware parallelism to measure)"
    row = {
        "benchmark": "pipeline-depth-scaled",
        "runs": WALL_RUNS,
        "cpus": cpus,
        "serial": serial,
        "parallel": pool,
        "speedup": round(serial["wall_s"] / pool["wall_s"], 2)
        if pool["wall_s"] else 0.0,
        "wall_gate": wall_gate,
    }
    for field in ("status", "errors", "iterations"):
        if serial[field] != pool[field]:
            failures.append(
                "pipeline: {} differs (serial {!r}, jobs=2 {!r})"
                .format(field, serial[field], pool[field]))
    if pool["cache_hit_rate"] < serial["cache_hit_rate"]:
        failures.append(
            "pipeline: pool cache hit rate {:.2%} below serial {:.2%}"
            .format(pool["cache_hit_rate"], serial["cache_hit_rate"]))
    if cpus >= 2 and pool["wall_s"] >= serial["wall_s"]:
        failures.append(
            "pipeline: jobs=2 wall {}s not below serial {}s on {} CPUs"
            .format(pool["wall_s"], serial["wall_s"], cpus))
    return row


#: Depth-scaled workload for the subsumption gate.  The two ``x`` nests
#: share the strict UNSAT core {x > 60, x < 30}: the first nest's
#: infeasible flip pays the solver call and records the minimized core,
#: the second nest's flip query ([x > 20, x > 60, x < 30]) is neither an
#: exact hit nor a superset of the *whole* first query, so only the core
#: tier can refute it without a call.  The three independent guards are
#: what the coupling analysis proves dedup-eligible: at depth 2 their
#: flip queries repeat across every subtree of the other guards, and the
#: worklist dedup collapses the repeats (strictly fewer runs) while the
#: ``b == 9`` abort pins that the error set survives the pruning.
SUBSUME_SOURCE = """
int subsume_bench(int x, int a, int b, int c) {
  if (x > 10) { if (x > 60) { if (x < 30) { x = 0; } } }
  if (x > 20) { if (x > 60) { if (x < 30) { x = 1; } } }
  if (a == 7) { x = 2; }
  if (b == 9) { abort(); }
  if (c == 11) { x = 3; }
  return x;
}
"""


def subsumption_section(failures):
    """The tentpole gate: subsumption prunes runs and calls, not errors.

    On the depth-scaled benchmark the subsuming session must finish in
    *strictly fewer* runs and *strictly fewer* solver calls than its
    ``--no-subsumption`` ablation while reporting the identical error
    set and verdict, with both pruning counters visibly non-zero (and
    zero under the ablation).  A jobs=2 session under subsumption must
    match the serial one exactly — commit-order dedup is deterministic.
    """
    common = dict(depth=2, max_iterations=400, seed=0, strategy="bfs",
                  stop_on_first_error=False)
    on = _run(SUBSUME_SOURCE, "subsume_bench", **common)
    off = _run(SUBSUME_SOURCE, "subsume_bench", subsumption=False, **common)
    pool = _run(SUBSUME_SOURCE, "subsume_bench", jobs=2, **common)
    row = {
        "benchmark": "subsume-depth-scaled",
        "subsuming": on,
        "ablated": off,
        "parallel": pool,
        "runs_saved": off["iterations"] - on["iterations"],
        "solver_calls_saved": off["solver_calls"] - on["solver_calls"],
    }
    for field in ("status", "errors"):
        if on[field] != off[field]:
            failures.append(
                "subsumption: {} differs (subsuming {!r}, ablated {!r})"
                .format(field, on[field], off[field]))
    if on["iterations"] >= off["iterations"]:
        failures.append(
            "subsumption: {} runs not strictly below the ablation's {}"
            .format(on["iterations"], off["iterations"]))
    if on["solver_calls"] >= off["solver_calls"]:
        failures.append(
            "subsumption: {} solver calls not strictly below the "
            "ablation's {}".format(on["solver_calls"],
                                   off["solver_calls"]))
    if on["flips_subsumed_core"] <= 0 or on["worklist_deduped"] <= 0:
        failures.append(
            "subsumption: pruning counters not both positive "
            "(cores {}, deduped {})".format(on["flips_subsumed_core"],
                                            on["worklist_deduped"]))
    if off["flips_subsumed_core"] or off["worklist_deduped"]:
        failures.append(
            "subsumption: ablation counted pruning (cores {}, deduped "
            "{})".format(off["flips_subsumed_core"],
                         off["worklist_deduped"]))
    for field in ("status", "errors", "iterations", "worklist_deduped"):
        if on[field] != pool[field]:
            failures.append(
                "subsumption: {} differs (serial {!r}, jobs=2 {!r})"
                .format(field, on[field], pool[field]))
    return row


def phases_section(failures):
    """Phase breakdown of a profiled run, plus the tracing-overhead row."""
    common = dict(depth=2, max_iterations=1000, seed=0, strategy="dfs",
                  stop_on_first_error=False)

    dart = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                DartOptions(profile_phases=True, **common))
    start = time.perf_counter()
    result = dart.run()
    wall = time.perf_counter() - start
    snapshot = result.stats.phases.snapshot()
    attributed = sum(entry["seconds"] for entry in snapshot.values())
    coverage = attributed / wall if wall else 1.0

    def best_of(n, **overrides):
        walls = []
        for _ in range(n):
            # Compile outside the window: the phases attribute *search*
            # time, not the one-off front-end cost.
            dart = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                        DartOptions(**overrides, **common))
            t0 = time.perf_counter()
            dart.run()
            walls.append(time.perf_counter() - t0)
        return min(walls)

    plain = best_of(WALL_RUNS)
    instrumented = best_of(WALL_RUNS, trace_file=os.devnull,
                           profile_phases=True)
    row = {
        "program": "sec. 4.1 AC controller, depth 2, dfs, full exploration",
        "wall_s": round(wall, 4),
        "phases": snapshot,
        "phase_coverage": round(coverage, 4),
        "runs": WALL_RUNS,
        "plain_wall_s": round(plain, 4),
        "instrumented_wall_s": round(instrumented, 4),
        "instrumentation_overhead": round(instrumented / plain - 1.0, 4)
        if plain else 0.0,
    }
    if coverage < 0.9:
        failures.append(
            "phases: only {:.1%} of wall time attributed to "
            "execute/solve/cache/checkpoint (>= 90% required)"
            .format(coverage)
        )
    return row


#: Overflow-sensitive workload for the widening funnel: every branch
#: needs the bit-precise machine-integer encoding to flip (unsigned
#: compare against a negative constant, a sum that wraps at 2**31, and
#: an unsigned sum that wraps at 2**32).
WRAP_BENCH_SOURCE = """
int wrap_bench(int x, unsigned u) {
    int hits;
    hits = 0;
    if (u >= -28) { hits = hits + 1; }
    if (x + 2000000000 > 0) { hits = hits + 1; }
    if (u + 20 < 19) { hits = hits + 1; }
    return hits;
}
"""


def widening_section(failures):
    """The widened/dropped funnel on a wrap-heavy search.

    Gates the PR's headline invariant: the widening layer encodes every
    wrap-affected conjunct faithfully (``conjuncts_dropped_unfaithful``
    stays 0) and the session still finishes complete — directed search
    through machine-integer semantics, not random luck.
    """
    row = _run(WRAP_BENCH_SOURCE, "wrap_bench", max_iterations=120,
               seed=0, stop_on_first_error=False)
    if row["conjuncts_widened"] == 0:
        failures.append("widening: no conjunct was widened on the "
                        "wrap-heavy benchmark")
    if row["conjuncts_dropped_unfaithful"] != 0:
        failures.append(
            "widening: {} conjunct(s) dropped as unfaithful (0 required)"
            .format(row["conjuncts_dropped_unfaithful"]))
    if row["status"] != "complete":
        failures.append("widening: wrap-heavy search ended {!r}, not "
                        "complete".format(row["status"]))
    return row


#: oSIP-shaped throughput kernel (bench_sec43 scale): a symbolic command
#: dispatch wrapped around concrete parse/checksum loops — the workload
#: profile the compiled engine's taint-gated fast path is built for.
#: Only the branches on ``cmd``/``key`` are input-dependent; the loop
#: nest is pure concrete arithmetic the interpreter used to re-dispatch
#: node by node.
THROUGHPUT_SOURCE = """
int osip_like(int cmd, int key) {
    int i; int j; int acc; int sum; int table[32];
    acc = 0;
    sum = 0;
    for (i = 0; i < 32; i = i + 1) { table[i] = (i * 16807) % 97; }
    for (i = 0; i < 24; i = i + 1) {
        for (j = 0; j < 32; j = j + 1) {
            acc = acc + table[j] * (j + i);
            sum = sum ^ (acc >> 3);
            acc = acc & 1048575;
            sum = sum + (table[j] ^ i);
        }
    }
    if (cmd > sum % 7) {
        if (key == 41) { return 3; }
        return 1;
    }
    if (cmd < -100) { return 2; }
    return 0;
}
"""


def throughput_section(failures):
    """Compiled vs. interpreted engine on the throughput kernel.

    Each configuration explores the kernel to completion ``WALL_RUNS``
    times under ``profile_phases=True``; the per-run metric is executed
    instructions per second over the execute(+compile) phase seconds,
    and the configuration keeps its best run.  Gates: >= 3x speedup,
    identical status/errors/instruction counts (observational identity
    is enforced separately by the engine-differential oracle; here it
    pins the two sides of the ratio to the same workload).
    """
    common = dict(max_iterations=64, seed=0, stop_on_first_error=False,
                  handle_signals=False, profile_phases=True)

    def session(compiled_execution):
        best = None
        for _ in range(WALL_RUNS):
            dart = Dart(THROUGHPUT_SOURCE, "osip_like", DartOptions(
                compiled_execution=compiled_execution, **common))
            result = dart.run()
            snapshot = result.stats.phases.snapshot()
            seconds = sum(
                snapshot.get(phase, {"seconds": 0.0})["seconds"]
                for phase in ("execute", "compile"))
            summary = result.stats.summary()
            row = {
                "status": result.status,
                "errors": sorted({
                    "{}@{}".format(error.kind, error.location)
                    for error in result.errors}),
                "iterations": result.iterations,
                "instructions_executed": summary["instructions_executed"],
                "instructions_symbolic": summary["instructions_symbolic"],
                "execute_plus_compile_s": round(seconds, 4),
                "instructions_per_s": round(
                    summary["instructions_executed"] / seconds, 1)
                if seconds else 0.0,
            }
            if best is None or row["instructions_per_s"] \
                    > best["instructions_per_s"]:
                best = row
        return best

    interpreted = session(False)
    compiled = session(True)
    speedup = (compiled["instructions_per_s"]
               / interpreted["instructions_per_s"]
               if interpreted["instructions_per_s"] else 0.0)
    row = {
        "program": "oSIP-shaped command dispatch + checksum loops, "
                   "full exploration",
        "runs": WALL_RUNS,
        "interpreted": interpreted,
        "compiled": compiled,
        "speedup": round(speedup, 2),
    }
    for field in ("status", "errors", "iterations",
                  "instructions_executed", "instructions_symbolic"):
        if interpreted[field] != compiled[field]:
            failures.append(
                "throughput: {} differs (interpreted {!r}, compiled {!r})"
                .format(field, interpreted[field], compiled[field]))
    if speedup < ACCEPT_SPEEDUP:
        failures.append(
            "throughput: compiled-engine speedup {:.2f}x below the "
            "{:.1f}x bar ({:.0f}/s -> {:.0f}/s)".format(
                speedup, ACCEPT_SPEEDUP,
                interpreted["instructions_per_s"],
                compiled["instructions_per_s"]))
    return row


#: Run budgets of the coverage-vs-budget curve (doublings, CI-cheap).
COVERAGE_BUDGETS = (1, 2, 4, 8, 16, 32, 64, 128)


def coverage_section(failures):
    """C1 branch coverage vs. run budget on the AC controller.

    One fresh depth-2 bfs campaign per budget; the recorded point is the
    session's C1 rollup (branches with BOTH arms taken).  Gates: the
    curve is monotone non-decreasing in the budget (a deterministic
    directed search can only discover more), and the largest budget
    reaches exactly the full-exploration reference — the directed
    search needs ~30 runs to saturate a program random testing cannot
    finish at all (Section 4.1).
    """
    common = dict(depth=2, seed=0, strategy="bfs",
                  stop_on_first_error=False)

    def point(budget):
        result = Dart(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                      DartOptions(max_iterations=budget, **common)).run()
        coverage = result.coverage
        return {
            "budget": budget,
            "iterations": result.iterations,
            "c1_percent": round(coverage.c1_percent, 2),
            "branches_both_arms": coverage.branches_both_arms,
            "total_branches": coverage.total_branches,
            "direction_percent": round(coverage.percent, 2),
        }

    reference = point(1000)
    curve = [point(budget) for budget in COVERAGE_BUDGETS]
    row = {
        "program": "sec. 4.1 AC controller, depth 2, bfs",
        "curve": curve,
        "reference": reference,
    }
    for earlier, later in zip(curve, curve[1:]):
        if later["c1_percent"] < earlier["c1_percent"]:
            failures.append(
                "coverage: C1 fell from {}% (budget {}) to {}% (budget "
                "{}) — the curve must be monotone".format(
                    earlier["c1_percent"], earlier["budget"],
                    later["c1_percent"], later["budget"]))
            break
    if curve[-1]["c1_percent"] != reference["c1_percent"]:
        failures.append(
            "coverage: budget {} reached {}% C1, full exploration "
            "reaches {}%".format(
                curve[-1]["budget"], curve[-1]["c1_percent"],
                reference["c1_percent"]))
    return row


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="skip the Needham-Schroeder parallel row")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "BENCH_perf.json"))
    args = parser.parse_args(argv)

    failures = []
    report = {
        "benchmark": "solver-throughput (slicing + cache + parallel)",
        "program": "sec. 4.1 AC controller, depth 2, full exploration",
        "quick": args.quick,
        "ablation": [ablation(s, failures) for s in ("dfs", "bfs")],
        "parallel": [parallel_check(
            "ac-controller-depth2", AC_CONTROLLER_SOURCE,
            AC_CONTROLLER_TOPLEVEL, failures,
            depth=2, max_iterations=1000, seed=0, strategy="bfs",
            stop_on_first_error=False,
        )],
    }
    if not args.quick:
        report["parallel"].append(parallel_check(
            "ns-possibilistic-depth2", ns_source("possibilistic"),
            "ns_step", failures,
            depth=2, max_iterations=50_000, seed=0, strategy="bfs",
        ))
    report["parallel"].append(pipeline_gate(failures))
    report["subsumption"] = subsumption_section(failures)
    report["widening"] = widening_section(failures)
    report["coverage"] = coverage_section(failures)
    report["phases"] = phases_section(failures)
    report["throughput"] = throughput_section(failures)
    report["ok"] = not failures
    report["failures"] = failures

    out = os.path.abspath(args.out)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for row in report["ablation"]:
        print("ablation {strategy}: {reduction:.1%} fewer solver calls "
              "({base} -> {opt}), avg conjuncts {bavg} -> {oavg}, "
              "cache hit rate {rate:.1%}".format(
                  strategy=row["strategy"],
                  reduction=row["solver_call_reduction"],
                  base=row["baseline"]["solver_calls"],
                  opt=row["optimised"]["solver_calls"],
                  bavg=row["baseline"]["avg_constraints_per_call"],
                  oavg=row["optimised"]["avg_constraints_per_call"],
                  rate=row["optimised"]["cache_hit_rate"]))
    for row in report["parallel"]:
        print("parallel {benchmark}: serial errors {s} == jobs=2 errors "
              "{p}".format(benchmark=row["benchmark"],
                           s=row["serial"]["errors"],
                           p=row["parallel"]["errors"]))
        if "wall_gate" in row:
            print("parallel {benchmark}: wall {sw}s serial vs {pw}s "
                  "jobs=2 ({speedup}x), hit rate {sr:.2%} -> {pr:.2%}, "
                  "wall gate {gate}".format(
                      benchmark=row["benchmark"],
                      sw=row["serial"]["wall_s"],
                      pw=row["parallel"]["wall_s"],
                      speedup=row["speedup"],
                      sr=row["serial"]["cache_hit_rate"],
                      pr=row["parallel"]["cache_hit_rate"],
                      gate=row["wall_gate"]))
    subsume = report["subsumption"]
    print("subsumption: {} -> {} runs, {} -> {} solver calls "
          "(cores {}, deduped {}), errors {}".format(
              subsume["ablated"]["iterations"],
              subsume["subsuming"]["iterations"],
              subsume["ablated"]["solver_calls"],
              subsume["subsuming"]["solver_calls"],
              subsume["subsuming"]["flips_subsumed_core"],
              subsume["subsuming"]["worklist_deduped"],
              subsume["subsuming"]["errors"]))
    widening = report["widening"]
    print("widening: {} conjunct(s) widened, {} dropped, status {}"
          .format(widening["conjuncts_widened"],
                  widening["conjuncts_dropped_unfaithful"],
                  widening["status"]))
    curve = report["coverage"]["curve"]
    print("coverage: C1 {} across budgets {} (reference {}%)".format(
        " -> ".join("{}%".format(entry["c1_percent"]) for entry in curve),
        "/".join(str(entry["budget"]) for entry in curve),
        report["coverage"]["reference"]["c1_percent"]))
    phases = report["phases"]
    print("phases: {:.1%} of wall attributed ({}); tracing+profiling "
          "overhead {:+.1%}".format(
              phases["phase_coverage"],
              ", ".join("{} {:.4f}s".format(name, entry["seconds"])
                        for name, entry in phases["phases"].items()),
              phases["instrumentation_overhead"]))
    throughput = report["throughput"]
    print("throughput: {:.0f} -> {:.0f} instructions/s "
          "({:.2f}x, best of {} runs)".format(
              throughput["interpreted"]["instructions_per_s"],
              throughput["compiled"]["instructions_per_s"],
              throughput["speedup"], throughput["runs"]))
    print("wrote", out)
    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
