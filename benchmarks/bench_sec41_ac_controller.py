"""Section 4.1: the AC-controller experiment (the paper's prose table).

Paper:
    depth 1 — no error; directed search explores all paths in 6 runs,
              < 1 s; random search runs forever.
    depth 2 — assertion violation, found by the directed search in 7 runs,
              < 1 s; random search finds nothing in hours (probability
              1 / 2^64 per attempt).

Here the exact run counts differ slightly (branch accounting includes the
driver loop), but the shape is identical: single-digit runs, full coverage
at depth 1, the (3, 0) sequence at depth 2, random testing hopeless.
"""

from _common import attach, outcome, print_table

from repro import dart_check, random_check
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
    DEPTH2_ERROR_SEQUENCE,
)

RANDOM_BUDGET = 5_000


def test_table_section41(benchmark):
    rows = []
    results = {}

    def sweep():
        for depth in (1, 2):
            results[depth] = (
                dart_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                           depth=depth, max_iterations=1000, seed=0),
                random_check(AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                             depth=depth, max_iterations=RANDOM_BUDGET,
                             seed=0),
            )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    paper = {1: ("no error", 6), 2: ("error", 7)}
    for depth in (1, 2):
        directed, baseline = results[depth]
        rows.append((
            depth,
            "{} / {} runs".format(*paper[depth]),
            outcome(directed),
            directed.iterations,
            outcome(baseline),
        ))
    print_table(
        "Section 4.1: AC controller",
        ("depth", "paper (directed)", "directed", "runs",
         "random ({} runs)".format(RANDOM_BUDGET)),
        rows,
    )

    depth1, random1 = results[1]
    depth2, random2 = results[2]
    # Shape assertions against the paper.
    assert depth1.complete and not depth1.found_error
    assert depth1.iterations <= 10  # paper: 6
    assert depth2.found_error
    assert depth2.iterations <= 60  # paper: 7
    assert tuple(depth2.first_error().inputs) == DEPTH2_ERROR_SEQUENCE
    assert not random1.found_error and not random2.found_error
    attach(benchmark,
           depth1_runs=depth1.iterations,
           depth2_runs=depth2.iterations,
           depth2_trigger=list(depth2.first_error().inputs))
