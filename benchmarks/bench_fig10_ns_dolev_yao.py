"""Figure 10: Needham-Schroeder with a Dolev-Yao intruder model.

Paper:
    depth   error?   iterations (runtime)
      1       no     5 runs (< 1 s)
      2       no     85 runs (< 1 s)
      3       no     6,260 runs (22 s)
      4      yes     328,459 runs (18 minutes)
plus the coda: with Lowe's fix as implemented (incompletely), DART still
finds a violation (~22 minutes); with the corrected fix, none.

The default run covers depths 1-3 (complete, no error — measured
17 / 294 / 5,168 runs, the paper's growth shape) and verifies the fix
variants at the possibilistic level.  Set DART_BENCH_FULL=1 to also run
the depth-4 searches that find the full Lowe attack (~3-7 minutes each,
measured: attack at run 80,694; buggy-fix attack at run 80,694;
correct fix survives the same budget).
"""

from _common import attach, full_mode, print_table

from repro import dart_check
from repro.programs.needham_schroeder import ns_source

PAPER = {1: ("no", 5), 2: ("no", 85), 3: ("no", 6260), 4: ("yes", 328459)}


def _dy(depth, fix="none", max_iterations=50_000, time_limit=None):
    return dart_check(
        ns_source("dolev_yao", fix=fix), "ns_dy_step",
        depth=depth, max_iterations=max_iterations, seed=0,
        time_limit=time_limit,
    )


def test_figure10_depths_1_to_3(benchmark):
    results = {}

    def sweep():
        for depth in (1, 2, 3):
            results[depth] = _dy(depth)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for depth in (1, 2, 3):
        paper_error, paper_runs = PAPER[depth]
        result = results[depth]
        rows.append((
            depth, paper_error, paper_runs,
            "yes" if result.found_error else "no",
            result.iterations,
            "complete" if result.complete else "budget",
        ))
    print_table(
        "Figure 10: NS protocol, Dolev-Yao intruder (depths 1-3)",
        ("depth", "paper error?", "paper runs", "error?", "runs", "search"),
        rows,
    )

    for depth in (1, 2, 3):
        assert results[depth].complete, depth
        assert not results[depth].found_error, depth
    # Steep growth, as in the paper (x17, x74 there; ~x17 both steps here).
    assert results[2].iterations > 10 * results[1].iterations
    assert results[3].iterations > 10 * results[2].iterations
    attach(benchmark, **{
        "depth{}_runs".format(d): results[d].iterations for d in (1, 2, 3)
    })


def test_figure10_depth4_attack(benchmark):
    """The full Lowe attack at input length 4 (DART_BENCH_FULL=1)."""
    if not full_mode():
        import pytest

        pytest.skip("set DART_BENCH_FULL=1 for the depth-4 attack search")
    result = benchmark.pedantic(
        lambda: _dy(4, max_iterations=400_000),
        rounds=1, iterations=1,
    )
    assert result.found_error
    inputs = result.first_error().inputs
    steps = [tuple(inputs[i:i + 3]) for i in range(0, 12, 3)]
    # Lowe's attack: A->I session, composed msg1 to B, forward msg2 to A,
    # composed msg3 to B.
    assert steps[0][0] == 2
    assert steps[1][0] == 4 and steps[1][1] == 101 and steps[1][2] == 1
    assert steps[2][0] == 3
    assert steps[3][0] == 5 and steps[3][1] == 102
    print_table(
        "Figure 10 row 4: the Lowe attack",
        ("paper runs", "runs", "attack steps"),
        [(PAPER[4][1], result.iterations, steps)],
    )
    attach(benchmark, runs_to_attack=result.iterations)


def test_lowe_fix_coda(benchmark):
    """§4.2 coda: buggy fix still attackable, correct fix blocks the
    projection attack.  The cheap possibilistic variant runs by default;
    the Dolev-Yao depth-4 variant needs DART_BENCH_FULL=1."""
    results = {}

    def sweep():
        for fix in ("none", "buggy", "correct"):
            results[fix] = dart_check(
                ns_source("possibilistic", fix=fix), "ns_step",
                depth=2, max_iterations=20_000, seed=0,
            )
        if full_mode():
            results["dy_buggy"] = _dy(4, fix="buggy",
                                      max_iterations=400_000)
            results["dy_correct"] = _dy(4, fix="correct",
                                        max_iterations=150_000)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (fix, "yes" if results[fix].found_error else "no",
         results[fix].iterations)
        for fix in ("none", "buggy", "correct")
    ]
    print_table(
        "Lowe's fix sweep (possibilistic projection, depth 2)",
        ("fix", "attack found?", "runs"),
        rows,
    )
    # The projection attack (B's side only) is independent of A's check.
    for fix in ("none", "buggy", "correct"):
        assert results[fix].found_error
    if full_mode():
        assert results["dy_buggy"].found_error  # DART's new bug, found
        assert not results["dy_correct"].found_error
        print_table(
            "Lowe's fix sweep (Dolev-Yao, depth 4)",
            ("fix", "attack found?", "runs"),
            [("buggy", "yes", results["dy_buggy"].iterations),
             ("correct", "no", results["dy_correct"].iterations)],
        )
    attach(benchmark, possibilistic_runs={
        fix: results[fix].iterations
        for fix in ("none", "buggy", "correct")
    })
