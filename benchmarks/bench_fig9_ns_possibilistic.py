"""Figure 9: Needham-Schroeder with a possibilistic intruder model.

Paper:
    depth   error?   directed search
      1       no     69 runs (< 1 s)
      2      yes     664 runs (2 s)
    (random search: no assertion violation after many hours)

The reproduced run counts differ (the message vocabulary of our NS
implementation is not byte-identical to the Bell Labs code) but every
qualitative cell matches: full coverage and no error at depth 1, the
attack — the projection of Lowe's attack from B's point of view — at
depth 2, random testing empty-handed.
"""

from _common import attach, outcome, print_table

from repro import dart_check, random_check
from repro.programs.needham_schroeder import ns_source

PAPER = {1: ("no", 69), 2: ("yes", 664)}
RANDOM_BUDGET = 10_000


def test_figure9(benchmark):
    results = {}

    def sweep():
        for depth in (1, 2):
            results[depth] = dart_check(
                ns_source("possibilistic"), "ns_step",
                depth=depth, max_iterations=50_000, seed=0,
            )
        results["random"] = random_check(
            ns_source("possibilistic"), "ns_step",
            depth=2, max_iterations=RANDOM_BUDGET, seed=0,
        )
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for depth in (1, 2):
        paper_error, paper_runs = PAPER[depth]
        result = results[depth]
        rows.append((
            depth,
            paper_error,
            paper_runs,
            "yes" if result.found_error else "no",
            result.iterations,
            outcome(result),
        ))
    print_table(
        "Figure 9: NS protocol, possibilistic intruder",
        ("depth", "paper error?", "paper runs", "error?", "runs",
         "outcome"),
        rows,
    )

    # Shape assertions.
    depth1, depth2 = results[1], results[2]
    assert depth1.complete and not depth1.found_error
    assert depth2.found_error
    assert depth2.iterations > depth1.iterations  # growth with depth
    assert not results["random"].found_error
    # The attack is the B-side projection: both messages target B (= 2).
    inputs = depth2.first_error().inputs
    assert inputs[0] == 2 and inputs[6] == 2
    attach(benchmark,
           depth1_runs=depth1.iterations,
           depth2_runs=depth2.iterations,
           attack=list(inputs))
