"""The introduction's coverage claim, measured.

Paper (Section 1): "random testing usually provides low code coverage ...
the then branch of the conditional statement ``if (x == 10)`` has only one
chance to be exercised out of 2^32 ... the probability of taking the then
branch ... can be viewed as 0.5 with DART."

This benchmark sweeps the run budget and reports the branch-direction
coverage each method reaches on the input-filtering pipeline — the
directed search climbs to 100 % in a handful of runs, random testing
plateaus at the filter boundary.
"""

from _common import attach, print_table

from repro import DartOptions, dart_check, random_check
from repro.programs import samples

BUDGETS = (1, 2, 5, 10, 50, 200)


def test_coverage_growth_series(benchmark):
    directed = {}
    baseline = {}

    def sweep():
        for budget in BUDGETS:
            options = DartOptions(max_iterations=budget, seed=0,
                                  stop_on_first_error=False)
            directed[budget] = dart_check(
                samples.FILTER_SOURCE, "entry", options
            )
            options = DartOptions(max_iterations=budget, seed=0,
                                  stop_on_first_error=False)
            baseline[budget] = random_check(
                samples.FILTER_SOURCE, "entry", options
            )
        return directed

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (budget,
         "{:.0f}%".format(directed[budget].coverage.percent),
         "{:.0f}%".format(baseline[budget].coverage.percent))
        for budget in BUDGETS
    ]
    print_table(
        "Branch-direction coverage vs run budget (filter pipeline)",
        ("runs", "DART", "random"),
        rows,
    )

    final_directed = directed[BUDGETS[-1]]
    final_baseline = baseline[BUDGETS[-1]]
    assert final_directed.coverage.percent == 100.0
    assert final_baseline.coverage.percent < 100.0
    # Coverage is monotone in the budget for both methods.
    for series in (directed, baseline):
        percents = [series[b].coverage.percent for b in BUDGETS]
        assert percents == sorted(percents)
    attach(benchmark,
           directed_final=final_directed.coverage.percent,
           random_final=final_baseline.coverage.percent)


def test_coverage_on_complete_ac_session(benchmark):
    """Complete exploration covers every *feasible* direction: 12 of 16
    at depth 1 (the alarm conjunction needs two messages)."""
    from repro.programs.ac_controller import AC_CONTROLLER_SOURCE

    result = benchmark.pedantic(
        lambda: dart_check(AC_CONTROLLER_SOURCE, "ac_controller",
                           depth=1, max_iterations=200, seed=0),
        rounds=1, iterations=1,
    )
    assert result.complete
    assert result.coverage.covered_directions == 12
    assert result.coverage.total_directions == 16
    attach(benchmark, coverage=result.coverage.describe())
