"""Section 4.3: the oSIP study.

Paper:
    * ~600 externally visible functions, each made the toplevel in turn,
      at most 1,000 runs each;
    * "DART found a way to crash 65% of the oSIP functions within 1,000
      attempts";
    * most crashes share one pattern: a pointer argument dereferenced
      without a NULL check;
    * one security bug: the parser's unchecked ``alloca`` — any message
      larger than the stack crashes it remotely.

The default benchmark sweeps a deterministic 48-function sample of the
generated library (the full 596-function sweep runs under
DART_BENCH_FULL=1) and reproduces the alloca attack threshold.
"""

import random

from _common import attach, full_mode, print_table

from repro import DartOptions, dart_check
from repro.interp import Machine, MachineOptions, SegFault
from repro.interp.memory import MemoryOptions
from repro.minic import compile_program
from repro.programs.osip import OsipLibrary

SAMPLE_SIZE = 48
STACK_LIMIT = 1 << 16  # the paper's 2.5 MB cygwin stack, scaled down


def _sweep_one(library, entry):
    options = DartOptions(max_iterations=1000, seed=1, max_steps=200_000,
                          max_init_depth=4)
    result = dart_check(library.source_for_function(entry.name),
                        entry.name, options)
    return result


def test_osip_crash_sweep(benchmark):
    library = OsipLibrary()
    if full_mode():
        sample = list(library.functions)
    else:
        rng = random.Random(0)
        sample = rng.sample(library.functions, SAMPLE_SIZE)

    outcomes = {}

    def sweep():
        for entry in sample:
            outcomes[entry.name] = _sweep_one(library, entry)
        return outcomes

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    crashed = [name for name, r in outcomes.items() if r.found_error]
    rate = len(crashed) / len(sample)
    by_module = {}
    for entry in sample:
        stats = by_module.setdefault(entry.module, [0, 0])
        stats[1] += 1
        if outcomes[entry.name].found_error:
            stats[0] += 1
    rows = [
        (module, "{}/{}".format(*stats))
        for module, stats in sorted(by_module.items())
    ]
    rows.append(("TOTAL", "{}/{} = {:.0f}% (paper: 65%)".format(
        len(crashed), len(sample), rate * 100
    )))
    print_table(
        "Section 4.3: oSIP per-function crash sweep"
        + ("" if full_mode() else " (sampled; DART_BENCH_FULL=1 for all)"),
        ("module", "crashed/functions"),
        rows,
    )

    # Shape: the measured rate brackets the paper's 65%.
    assert 0.5 <= rate <= 0.8
    # Every crash must agree with the generator's ground truth.
    for entry in sample:
        assert outcomes[entry.name].found_error == entry.crashable, \
            entry.name
    # The dominant pattern is the NULL-argument dereference.
    segfaults = [
        name for name in crashed
        if outcomes[name].first_error().kind == "segmentation fault"
    ]
    assert len(segfaults) >= 0.9 * len(crashed)
    attach(benchmark, crash_rate=round(rate, 3),
           sample_size=len(sample))


def test_osip_crashes_found_within_few_runs(benchmark):
    """Most crashable functions fall on the very first runs (the coin has
    p = 0.5 per pointer argument), matching the paper's within-1,000 cap
    by orders of magnitude."""
    library = OsipLibrary()
    rng = random.Random(1)
    sample = rng.sample(
        [f for f in library.functions if f.crashable], 12
    )
    iterations = {}

    def sweep():
        for entry in sample:
            iterations[entry.name] = _sweep_one(library, entry).iterations
        return iterations

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(runs <= 1000 for runs in iterations.values())
    assert sorted(iterations.values())[len(iterations) // 2] <= 10
    attach(benchmark, runs_to_crash=iterations)


def test_osip_alloca_attack_threshold(benchmark):
    """The security bug: messages beyond the stack budget crash the
    parser; the checked variant fails gracefully on the same input."""
    library = OsipLibrary()
    module = compile_program(library.source_for_module("parser"))

    def probe(function, size):
        machine = Machine(module, MachineOptions(
            max_steps=10_000_000,
            memory=MemoryOptions(stack_limit=STACK_LIMIT),
        ))
        try:
            return machine.run(function, (size,)), None
        except SegFault as fault:
            return None, fault

    sizes = [1 << 10, 1 << 14, 3 << 14, 1 << 17, 1 << 20]
    outcomes = {}

    def sweep():
        for size in sizes:
            outcomes[size] = probe("osip_attack_probe", size)
        return outcomes

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for size in sizes:
        value, fault = outcomes[size]
        rows.append((
            size,
            "crash: {}".format(fault.message) if fault else
            "parsed (rc={})".format(value),
        ))
    print_table(
        "Section 4.3: the alloca attack (stack limit {} bytes)".format(
            STACK_LIMIT
        ),
        ("message bytes", "outcome"),
        rows,
    )

    # Shape: small messages parse, oversized ones crash, and the
    # transition sits at the stack budget.
    assert outcomes[1 << 10][1] is None
    assert outcomes[1 << 17][1] is not None
    assert outcomes[1 << 20][1] is not None
    crash_sizes = [s for s in sizes if outcomes[s][1] is not None]
    assert min(crash_sizes) >= STACK_LIMIT // 2
    attach(benchmark, first_crashing_size=min(crash_sizes))
