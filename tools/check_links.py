"""Markdown link checker for the repo's docs.

Scans ``*.md`` at the repo root and under ``docs/`` for inline links
(``[text](target)``) and verifies every *relative* target resolves:

* a path target must exist on disk (relative to the file containing the
  link);
* a ``#fragment`` on a markdown target (or a bare ``#fragment``) must
  match a heading in the target file, using GitHub's slug rules
  (lowercase, spaces to dashes, punctuation dropped, ``-N`` suffixes for
  duplicates).

External targets (``http(s)://``, ``mailto:``) are not fetched — CI must
stay offline — and links inside fenced code blocks are ignored.

Usage::

    python tools/check_links.py [ROOT]

Exits 0 when every link resolves, 1 with a ``file:line: message`` report
per broken link otherwise.
"""

import os
import re
import sys
import unicodedata

LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading, seen):
    """GitHub's anchor slug for a heading text (with -N dedup)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = unicodedata.normalize("NFKD", text).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    slug = text.strip().replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        slug = "{}-{}".format(slug, seen[slug] - 1)
    else:
        seen[slug] = 1
    return slug


def iter_markdown_files(root):
    for name in sorted(os.listdir(root)):
        if name.endswith(".md"):
            yield os.path.join(root, name)
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def collect_anchors(path, cache):
    anchors = cache.get(path)
    if anchors is None:
        anchors, seen, in_fence = set(), {}, False
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if FENCE_RE.match(line):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                match = HEADING_RE.match(line)
                if match:
                    anchors.add(github_slug(match.group(2), seen))
        cache[path] = anchors
    return anchors


def iter_links(path):
    """Yield (line_number, target) for inline links outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield number, match.group(1)


def check_file(path, anchor_cache):
    errors = []
    base = os.path.dirname(path)
    for number, target in iter_links(path):
        if target.startswith(EXTERNAL):
            continue
        target, _, fragment = target.partition("#")
        resolved = path if not target else \
            os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            errors.append("{}:{}: broken link: {}".format(
                path, number, target))
            continue
        if fragment:
            if not resolved.endswith(".md"):
                continue  # anchors into non-markdown are not checkable
            if fragment not in collect_anchors(resolved, anchor_cache):
                errors.append("{}:{}: missing anchor: {}#{}".format(
                    path, number, target or os.path.basename(path),
                    fragment))
    return errors


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else "."
    anchor_cache = {}
    errors = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        errors.extend(check_file(path, anchor_cache))
    for error in errors:
        print(error, file=sys.stderr)
    print("checked {} markdown file(s): {} broken link(s)".format(
        checked, len(errors)))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
